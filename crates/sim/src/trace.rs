//! Structured event traces: what happened, when, at which process.
//!
//! Tracing is off by default (the measurement workloads stay allocation
//! light) and enabled per simulation with
//! [`Simulation::enable_trace`](crate::engine::Simulation::enable_trace).
//! The trace records every invocation, response, send, receive and timer
//! firing with its real time, and renders either as a chronological log
//! or as per-process lanes — handy when staring at an adversarial run
//! trying to see *why* a foil's history fell apart.

use core::fmt;

use crate::ids::{MsgId, ProcessId};
use crate::time::SimTime;

/// What a trace event describes. Payloads are captured as their `Debug`
/// rendering so traces are uniform across actor types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An operation invocation.
    Invoke {
        /// `Debug` rendering of the operation.
        op: String,
    },
    /// An operation response.
    Respond {
        /// `Debug` rendering of the response.
        resp: String,
    },
    /// A message send.
    Send {
        /// Recipient.
        to: ProcessId,
        /// Message id (matches the message log).
        msg: MsgId,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// A message delivery.
    Recv {
        /// Sender.
        from: ProcessId,
        /// Message id.
        msg: MsgId,
    },
    /// A timer firing.
    Timer {
        /// `Debug` rendering of the timer tag.
        tag: String,
    },
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Real time of the event.
    pub at: SimTime,
    /// The process at which it happened.
    pub pid: ProcessId,
    /// What happened.
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:<8} {}  ", self.at, self.pid)?;
        match &self.kind {
            TraceEventKind::Invoke { op } => write!(f, "INVOKE  {op}"),
            TraceEventKind::Respond { resp } => write!(f, "RESPOND {resp}"),
            TraceEventKind::Send { to, msg, payload } => {
                write!(f, "SEND    -> {to} {msg:?} {payload}")
            }
            TraceEventKind::Recv { from, msg } => write!(f, "RECV    <- {from} {msg:?}"),
            TraceEventKind::Timer { tag } => write!(f, "TIMER   {tag}"),
        }
    }
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    pub(crate) fn record(&mut self, at: SimTime, pid: ProcessId, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, pid, kind });
    }

    /// All events, in the order they happened.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events at one process only.
    pub fn at_process(&self, pid: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Renders the chronological log, one event per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }

    /// Renders per-process operation lanes: for each process, its
    /// invocations and responses as `[op ............ resp]` spans, in
    /// time order. Sends/receives/timers are omitted.
    #[must_use]
    pub fn render_lanes(&self, n: usize) -> String {
        let mut out = String::new();
        for pid in ProcessId::all(n) {
            out.push_str(&format!("{pid}:\n"));
            let mut pending: Option<(&str, SimTime)> = None;
            for e in self.at_process(pid) {
                match &e.kind {
                    TraceEventKind::Invoke { op } => pending = Some((op, e.at)),
                    TraceEventKind::Respond { resp } => {
                        if let Some((op, started)) = pending.take() {
                            out.push_str(&format!(
                                "  [{started:>8} .. {:>8}]  {op} -> {resp}\n",
                                e.at
                            ));
                        }
                    }
                    _ => {}
                }
            }
            if let Some((op, started)) = pending {
                out.push_str(&format!("  [{started:>8} ..  pending]  {op}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn records_and_filters() {
        let mut tr = Trace::new();
        tr.record(t(0), p(0), TraceEventKind::Invoke { op: "w".into() });
        tr.record(t(5), p(1), TraceEventKind::Timer { tag: "hold".into() });
        tr.record(t(9), p(0), TraceEventKind::Respond { resp: "ok".into() });
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.at_process(p(0)).count(), 2);
        assert_eq!(tr.at_process(p(2)).count(), 0);
    }

    #[test]
    fn render_log_lines() {
        let mut tr = Trace::new();
        tr.record(t(0), p(0), TraceEventKind::Invoke { op: "deq".into() });
        tr.record(
            t(1),
            p(0),
            TraceEventKind::Send {
                to: p(1),
                msg: MsgId::new(0),
                payload: "m".into(),
            },
        );
        tr.record(
            t(3),
            p(1),
            TraceEventKind::Recv {
                from: p(0),
                msg: MsgId::new(0),
            },
        );
        let text = tr.render();
        assert!(text.contains("INVOKE  deq"));
        assert!(text.contains("SEND    -> p1"));
        assert!(text.contains("RECV    <- p0"));
    }

    #[test]
    fn lanes_pair_invokes_with_responses() {
        let mut tr = Trace::new();
        tr.record(t(0), p(0), TraceEventKind::Invoke { op: "a".into() });
        tr.record(t(10), p(0), TraceEventKind::Respond { resp: "ra".into() });
        tr.record(t(20), p(1), TraceEventKind::Invoke { op: "b".into() });
        let lanes = tr.render_lanes(2);
        assert!(lanes.contains("a -> ra"));
        assert!(lanes.contains("pending]  b"));
    }
}
