//! # skewbound-sim
//!
//! A deterministic discrete-event simulator for **partially synchronous
//! message-passing systems**: `n` processes, every message delay within
//! `[d − u, d]`, and local clocks that run at the real-time rate but may be
//! pairwise offset by up to the skew bound `ε`.
//!
//! This is the substrate on which the rest of the `skewbound` workspace
//! reproduces *Time Bounds for Shared Objects in Partially Synchronous
//! Systems* (Wang, 2011): shared-object implementations are written as
//! [`actor::Actor`] state machines; the engine executes them under a
//! [`clock::ClockAssignment`] and a [`delay::DelayModel`] (which plays the
//! adversary of the lower-bound proofs), and records the operation
//! [`history::History`] whose invocation-to-response spans are the "time
//! bounds" being studied.
//!
//! ## Quick example
//!
//! ```
//! use skewbound_sim::prelude::*;
//!
//! /// A trivial local counter object (single process, no messages).
//! #[derive(Debug, Default)]
//! struct Counter {
//!     value: i64,
//! }
//!
//! impl Actor for Counter {
//!     type Msg = ();
//!     type Op = i64; // increment amount
//!     type Resp = i64; // new value
//!     type Timer = ();
//!
//!     fn on_invoke(&mut self, by: i64, ctx: &mut Context<'_, Self>) {
//!         self.value += by;
//!         ctx.respond(self.value);
//!     }
//!     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
//!     fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
//! }
//!
//! let bounds = DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(3));
//! let mut sim = Simulation::new(
//!     vec![Counter::default()],
//!     ClockAssignment::zero(1),
//!     FixedDelay::maximal(bounds),
//! );
//! sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 5);
//! sim.run()?;
//! assert_eq!(sim.history().records()[0].resp(), Some(&5));
//! # Ok::<(), skewbound_sim::engine::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod actor;
pub mod clock;
pub mod delay;
pub mod engine;
pub mod equeue;
pub mod history;
pub mod ids;
pub mod node;
pub mod par;
pub mod rt;
pub mod shard;
pub mod slab;
pub mod stats;
pub mod time;
pub mod timers;
pub mod trace;
pub mod transport;
pub mod workload;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::actor::{Actor, Context};
    pub use crate::clock::ClockAssignment;
    pub use crate::delay::{
        BimodalDelay, DelayBounds, DelayBoundsError, DelayModel, FixedDelay, MatrixDelay, MsgMeta,
        ScriptedDelay, UniformDelay,
    };
    pub use crate::engine::{
        EventView, FifoPolicy, ScheduleDecision, SchedulePolicy, SimConfig, SimError, SimReport,
        Simulation,
    };
    pub use crate::history::{History, OpRecord};
    pub use crate::ids::{MsgId, OpId, ProcessId, TimerId};
    pub use crate::node::{Activation, NodeCore, Stamp};
    pub use crate::shard::{run_shards, ShardRun, ShardStats};
    pub use crate::stats::LatencySummary;
    pub use crate::time::{ClockOffset, ClockTime, SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceEvent, TraceEventKind, TraceSink};
    pub use crate::transport::{Transport, TransportError, WireTransport};
    pub use crate::workload::{ClosedLoop, Driver, NoDriver, Script};
}
