//! A real-thread runtime for the same [`Actor`] state machines.
//!
//! This module is the second backend over the shared
//! [`NodeCore`]: each process is a `NodeCore` on
//! an OS thread, activated by its mpsc inbox and its due timers, while
//! a private `ChannelTransport` implementing
//! [`Transport`](crate::transport::Transport) routes every send through
//! a delay-injecting router thread (delays drawn uniformly from the
//! same `[d − u, d]` bounds the engine enforces) and keeps the worker's
//! pending-timer schedule. All effect application, the one-pending-op
//! invariant, timer generations, trace emission and history recording
//! live in the node core — the discrete-event engine
//! ([`crate::engine`]) drives the identical code from its virtual-time
//! heap. Clocks are wall-clock readings plus per-process offsets; one
//! tick is interpreted as one microsecond.
//!
//! Entry points:
//!
//! * [`RtCluster`] — an interactive cluster: obtain an [`RtClient`] per
//!   process and call [`RtClient::invoke`] like a blocking RPC, or run a
//!   closed-loop [`Driver`] with [`RtCluster::run_driver`];
//! * [`run_threaded`] — batch mode: execute a timed script and return the
//!   observed [`History`].
//!
//! Because the OS scheduler adds real, unbounded noise, this runtime is
//! suitable for functional demonstrations (histories can still be checked
//! for linearizability) but not for measuring the tight time bounds — the
//! injected delay is a *lower* bound on actual delivery latency. Scheduling
//! noise can also perturb the relative order of closely spaced events, so
//! prefer workloads whose correctness does not hinge on exact tie-breaks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::Actor;
use crate::clock::ClockAssignment;
use crate::delay::DelayBounds;
use crate::history::History;
use crate::ids::{OpId, ProcessId};
use crate::node::{Activation, HistorySink, NodeCore, Stamp, TraceOutput};
use crate::time::{instant_to_sim, ticks_to_duration, ClockOffset, SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceSink};
use crate::transport::{run_router, ChannelTransport, Input, RouterMsg};
use crate::workload::{Driver, Script};

/// A trace sink shared by every worker thread of an [`RtCluster`].
///
/// Workers emit the same [`TraceEvent`]s as the discrete-event engine
/// (stamped with real time since the cluster epoch and the worker's
/// offset clock), serialised through the mutex. Keep a typed
/// `Arc<Mutex<S>>` clone before coercing to read the sink back after
/// [`RtCluster::shutdown`].
pub type RtTraceSink = Arc<Mutex<dyn TraceSink + Send>>;

/// A scripted invocation for [`run_threaded`].
#[derive(Debug, Clone)]
pub struct RtInvocation<O> {
    /// Target process.
    pub pid: ProcessId,
    /// Wall-clock offset from the start of the run, in ticks (µs).
    pub at: SimDuration,
    /// The operation.
    pub op: O,
}

/// Error returned by [`RtCluster::try_invoke_async`] when the target
/// process still has an operation in flight — the one-pending-op model
/// of Chapter III forbids overlapping invocations at one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpPending {
    /// The process whose previous operation has not yet responded.
    pub pid: ProcessId,
}

impl core::fmt::Display for OpPending {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: invocation while another operation is pending \
             (the application layer allows one pending operation per process)",
            self.pid
        )
    }
}

impl std::error::Error for OpPending {}

/// The (real time, local clock) stamp of an activation happening now.
fn stamp_now(epoch: Instant, offset: ClockOffset) -> Stamp {
    let now = instant_to_sim(epoch, Instant::now());
    Stamp {
        now,
        clock: now.to_clock(offset),
    }
}

/// The real-thread [`TraceOutput`]: the optional mutex-shared sink,
/// locked per event.
struct RtTrace<'a>(Option<&'a RtTraceSink>);

impl TraceOutput for RtTrace<'_> {
    fn active(&self) -> bool {
        self.0.is_some()
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.0 {
            sink.lock().unwrap().event(&event);
        }
    }
}

/// The real-thread [`HistorySink`]: the cluster's mutex-shared history,
/// locked per record.
struct SharedHistory<'a, A: Actor>(&'a Mutex<History<A::Op, A::Resp>>);

impl<A: Actor> HistorySink<A> for SharedHistory<'_, A> {
    fn record_invoke(&mut self, pid: ProcessId, op: A::Op, at: SimTime) -> OpId {
        self.0.lock().unwrap().record_invoke(pid, op, at)
    }

    fn record_response(&mut self, id: OpId, resp: A::Resp, at: SimTime) {
        self.0.lock().unwrap().record_response(id, resp, at);
    }
}

/// A running cluster of actor threads plus the delay-injecting router.
///
/// # Examples
///
/// ```no_run
/// use std::time::Duration;
/// use skewbound_sim::prelude::*;
/// use skewbound_sim::rt::RtCluster;
///
/// # #[derive(Debug)] struct Echo;
/// # impl Actor for Echo {
/// #     type Msg = (); type Op = u32; type Resp = u32; type Timer = ();
/// #     fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) { ctx.respond(op + 1); }
/// #     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
/// #     fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
/// # }
/// let bounds = DelayBounds::new(SimDuration::from_ticks(2_000), SimDuration::from_ticks(1_000));
/// let mut cluster = RtCluster::start(
///     vec![Echo, Echo],
///     &ClockAssignment::zero(2),
///     bounds,
///     7,
/// );
/// let mut client = cluster.client(ProcessId::new(0));
/// assert_eq!(client.invoke(41), 42);
/// drop(client);
/// let history = cluster.shutdown(Duration::from_millis(10));
/// assert!(history.is_complete());
/// ```
pub struct RtCluster<A: Actor> {
    epoch: Instant,
    proc_txs: Vec<SyncSender<Input<A>>>,
    router_tx: Sender<RouterMsg<A::Msg>>,
    history: Arc<Mutex<History<A::Op, A::Resp>>>,
    /// One flag per process: `true` while an operation is in flight.
    /// Client-side enforcement of the one-pending-op invariant — the
    /// worker clears its flag before announcing the completion.
    in_flight: Arc<Vec<AtomicBool>>,
    resp_rxs: Vec<Option<Receiver<A::Resp>>>,
    done_rx: Receiver<(ProcessId, OpId)>,
    worker_handles: Vec<JoinHandle<()>>,
    router_handle: Option<JoinHandle<()>>,
}

impl<A: Actor> core::fmt::Debug for RtCluster<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RtCluster")
            .field("n", &self.proc_txs.len())
            .finish_non_exhaustive()
    }
}

/// A per-process handle for blocking invocations on an [`RtCluster`].
pub struct RtClient<A: Actor> {
    pid: ProcessId,
    epoch: Instant,
    proc_tx: SyncSender<Input<A>>,
    resp_rx: Receiver<A::Resp>,
    history: Arc<Mutex<History<A::Op, A::Resp>>>,
    in_flight: Arc<Vec<AtomicBool>>,
}

impl<A: Actor> core::fmt::Debug for RtClient<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RtClient").field("pid", &self.pid).finish()
    }
}

impl<A: Actor> RtClient<A> {
    /// Invokes `op` at this client's process and blocks until the
    /// response arrives.
    ///
    /// The application model allows **at most one pending operation per
    /// process** (Chapter III): because this call blocks until the
    /// response, sequential calls keep the invariant by construction.
    /// Mixing a client with [`RtCluster::invoke_async`] on the same
    /// process can violate it, in which case this call panics rather
    /// than corrupt the history.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight at this process, if
    /// the cluster has shut down or a worker died, or if no response
    /// arrives within 30 seconds.
    pub fn invoke(&mut self, op: A::Op) -> A::Resp {
        claim_process(&self.in_flight, self.pid);
        let op_id = self.history.lock().unwrap().record_invoke(
            self.pid,
            op.clone(),
            instant_to_sim(self.epoch, Instant::now()),
        );
        self.proc_tx
            .send(Input::Invoke(op_id, op))
            .expect("cluster has shut down");
        self.resp_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("no response within 30s")
    }
}

/// Marks `pid` as having an operation in flight, panicking if it
/// already has one — the shared enforcement behind [`RtClient::invoke`]
/// and [`RtCluster::invoke_async`].
fn claim_process(in_flight: &[AtomicBool], pid: ProcessId) {
    assert!(
        !in_flight[pid.index()].swap(true, Ordering::AcqRel),
        "{pid}: invocation while another operation is pending \
         (the application layer allows one pending operation per process)"
    );
}

impl<A> RtCluster<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    A::Op: Send + 'static,
    A::Resp: Send + 'static,
    A::Timer: Send + 'static,
{
    /// Starts one thread per actor plus the router, injecting message
    /// delays drawn uniformly from `bounds` (seeded by `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or its length differs from `clocks`.
    #[must_use]
    pub fn start(actors: Vec<A>, clocks: &ClockAssignment, bounds: DelayBounds, seed: u64) -> Self {
        Self::start_inner(actors, clocks, bounds, seed, None)
    }

    /// Like [`RtCluster::start`], but every worker additionally streams
    /// structured [`TraceEvent`]s into `sink` — the same six event kinds
    /// the discrete-event engine emits, stamped with real time since the
    /// cluster epoch and the worker's offset clock. Message ids are
    /// allocated in global send order, so each `send` pairs with exactly
    /// one `deliver` carrying the same id.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RtCluster::start`].
    #[must_use]
    pub fn start_traced(
        actors: Vec<A>,
        clocks: &ClockAssignment,
        bounds: DelayBounds,
        seed: u64,
        sink: RtTraceSink,
    ) -> Self {
        Self::start_inner(actors, clocks, bounds, seed, Some(sink))
    }

    fn start_inner(
        actors: Vec<A>,
        clocks: &ClockAssignment,
        bounds: DelayBounds,
        seed: u64,
        trace: Option<RtTraceSink>,
    ) -> Self {
        assert!(!actors.is_empty(), "at least one process required");
        assert_eq!(
            actors.len(),
            clocks.len(),
            "clocks must cover all processes"
        );
        assert!(
            clocks.is_drift_free(),
            "the real-thread runtime does not emulate clock drift"
        );
        let n = actors.len();
        let epoch = Instant::now();
        let history: Arc<Mutex<History<A::Op, A::Resp>>> = Arc::new(Mutex::new(History::new()));
        let in_flight: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let (done_tx, done_rx) = channel::<(ProcessId, OpId)>();
        let (router_tx, router_rx) = channel::<RouterMsg<A::Msg>>();

        let mut proc_txs = Vec::with_capacity(n);
        let mut proc_rxs = Vec::with_capacity(n);
        let mut resp_txs = Vec::with_capacity(n);
        let mut resp_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel::<Input<A>>(1024);
            proc_txs.push(tx);
            proc_rxs.push(rx);
            let (rtx, rrx) = channel::<A::Resp>();
            resp_txs.push(rtx);
            resp_rxs.push(Some(rrx));
        }

        let router_handle = {
            let proc_txs = proc_txs.clone();
            thread::spawn(move || run_router::<A>(&router_rx, &proc_txs))
        };

        let msg_ids: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let mut worker_handles = Vec::with_capacity(n);
        for (idx, actor) in actors.into_iter().enumerate() {
            let pid = ProcessId::new(u32::try_from(idx).expect("too many processes"));
            let rx = proc_rxs.remove(0);
            let history = Arc::clone(&history);
            let in_flight = Arc::clone(&in_flight);
            let done_tx = done_tx.clone();
            let resp_tx = resp_txs[idx].clone();
            let offset = clocks.offset(pid);
            let trace = trace.clone();
            let mut transport = ChannelTransport::<A> {
                router_tx: router_tx.clone(),
                rng: StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                bounds,
                msg_ids: Arc::clone(&msg_ids),
                pending: Vec::new(),
            };

            worker_handles.push(thread::spawn(move || {
                worker_loop(
                    NodeCore::new(pid, n, actor),
                    epoch,
                    offset,
                    &rx,
                    &mut transport,
                    &history,
                    &in_flight[pid.index()],
                    &done_tx,
                    &resp_tx,
                    trace.as_ref(),
                );
            }));
        }

        RtCluster {
            epoch,
            proc_txs,
            router_tx,
            history,
            in_flight,
            resp_rxs,
            done_rx,
            worker_handles,
            router_handle: Some(router_handle),
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.proc_txs.len()
    }

    /// Takes the blocking client for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the client was already taken or `pid` is out of range.
    #[must_use]
    pub fn client(&mut self, pid: ProcessId) -> RtClient<A> {
        let resp_rx = self.resp_rxs[pid.index()]
            .take()
            .expect("client already taken");
        RtClient {
            pid,
            epoch: self.epoch,
            proc_tx: self.proc_txs[pid.index()].clone(),
            resp_rx,
            history: Arc::clone(&self.history),
            in_flight: Arc::clone(&self.in_flight),
        }
    }

    /// Fire-and-forget invocation: the response is recorded in the
    /// history (and consumes one [`RtCluster::wait_for`] credit) but not
    /// returned. Useful for timed scripts.
    ///
    /// # Panics
    ///
    /// Panics if `pid` still has an operation in flight (the model
    /// allows at most one pending operation per process — use
    /// [`RtCluster::try_invoke_async`] to detect this without
    /// panicking), or if the cluster has shut down.
    pub fn invoke_async(&self, pid: ProcessId, op: A::Op) {
        claim_process(&self.in_flight, pid);
        self.send_invoke(pid, op);
    }

    /// Like [`RtCluster::invoke_async`], but returns `Err(OpPending)`
    /// instead of panicking when `pid` still has an operation in flight.
    ///
    /// # Errors
    ///
    /// Returns [`OpPending`] if a previous invocation at `pid` has not
    /// yet responded.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has shut down.
    pub fn try_invoke_async(&self, pid: ProcessId, op: A::Op) -> Result<(), OpPending> {
        if self.in_flight[pid.index()].swap(true, Ordering::AcqRel) {
            return Err(OpPending { pid });
        }
        self.send_invoke(pid, op);
        Ok(())
    }

    fn send_invoke(&self, pid: ProcessId, op: A::Op) {
        let op_id = self.history.lock().unwrap().record_invoke(
            pid,
            op.clone(),
            instant_to_sim(self.epoch, Instant::now()),
        );
        self.proc_txs[pid.index()]
            .send(Input::Invoke(op_id, op))
            .expect("cluster has shut down");
    }

    /// Blocks until `count` operation responses have occurred since the
    /// cluster started (including ones answered through clients).
    ///
    /// # Panics
    ///
    /// Panics if the responses do not arrive within 30 seconds each.
    pub fn wait_for(&self, count: usize) {
        for _ in 0..count {
            self.done_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("timed out waiting for responses");
        }
    }

    /// Runs a closed-loop [`Driver`] against the cluster — the same
    /// workload abstraction
    /// [`Simulation::run_with`](crate::engine::Simulation::run_with)
    /// consumes, so one `ClosedLoop` definition exercises both backends.
    ///
    /// The driver's initial invocations are scheduled at their offsets
    /// from the cluster epoch; on each completion the driver is
    /// consulted (with the response time the worker recorded) for the
    /// process's follow-up invocation. Returns the number of completed
    /// operations. Because each follow-up is only issued after its
    /// predecessor's response, the one-pending-op invariant holds by
    /// construction.
    ///
    /// Do not interleave with [`RtCluster::wait_for`] — both consume
    /// completion notifications.
    ///
    /// # Panics
    ///
    /// Panics if a completion notification does not arrive within 30
    /// seconds of becoming due, or if the driver overlaps invocations
    /// at one process.
    pub fn run_driver<Dr>(&self, driver: &mut Dr) -> usize
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        // Scheduled-but-not-yet-issued invocations, scanned for the
        // earliest deadline (like the workers' pending-timer lists; a
        // closed loop holds at most one entry per process).
        let mut due: Vec<(Instant, ProcessId, A::Op)> = driver
            .initial()
            .into_iter()
            .map(|(pid, at, op)| (self.epoch + Duration::from_micros(at.as_ticks()), pid, op))
            .collect();
        let mut outstanding = 0usize;
        let mut completed = 0usize;
        loop {
            while let Some(i) = due
                .iter()
                .enumerate()
                .filter(|(_, d)| d.0 <= Instant::now())
                .min_by_key(|(_, d)| d.0)
                .map(|(i, _)| i)
            {
                let (_, pid, op) = due.swap_remove(i);
                self.invoke_async(pid, op);
                outstanding += 1;
            }
            if outstanding == 0 && due.is_empty() {
                break;
            }
            let timeout = due
                .iter()
                .map(|d| d.0)
                .min()
                .map(|at| at.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_secs(30));
            match self.done_rx.recv_timeout(timeout) {
                Ok((pid, op_id)) => {
                    outstanding -= 1;
                    completed += 1;
                    let next = {
                        let history = self.history.lock().unwrap();
                        let rec = history.get(op_id).expect("completed op is recorded");
                        let resp = rec.resp().expect("completion implies a response");
                        let at = rec.responded_at().expect("completion implies a response");
                        driver.next(pid, &rec.op, resp, at)
                    };
                    if let Some((gap, op)) = next {
                        due.push((Instant::now() + ticks_to_duration(gap), pid, op));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        completed
    }

    /// Waits `settle` (for in-flight messages), stops all threads, and
    /// returns the observed history.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn shutdown(mut self, settle: Duration) -> History<A::Op, A::Resp> {
        thread::sleep(settle);
        // Drain order matters: the router is asked to shut down *first*
        // and joined before any worker is told to stop. Its drain keeps
        // holding and forwarding every in-flight message/batch — plus
        // follow-up sends those deliveries trigger — until nothing has
        // been in flight for a grace window; only then do workers get
        // their shutdown marker (a FIFO inbox push, so it sorts after
        // every forwarded delivery). The old order (workers first,
        // router break on request) silently dropped queued deliveries
        // on teardown.
        let _ = self.router_tx.send(RouterMsg::Shutdown);
        if let Some(h) = self.router_handle.take() {
            h.join().expect("router thread panicked");
        }
        for tx in &self.proc_txs {
            let _ = tx.send(Input::Shutdown);
        }
        for h in self.worker_handles.drain(..) {
            h.join().expect("worker thread panicked");
        }
        // Workers are joined; unless a client still holds the Arc, the
        // history moves out without a clone.
        let history = std::mem::replace(&mut self.history, Arc::new(Mutex::new(History::new())));
        match Arc::try_unwrap(history) {
            Ok(mutex) => mutex.into_inner().unwrap(),
            Err(shared) => shared.lock().unwrap().clone(),
        }
    }
}

/// One worker thread: a [`NodeCore`] activated by its inbox and its due
/// timers. All effect/trace/history semantics live in the node core;
/// this loop only decides *when* the node activates and relays
/// completions to the cluster (clearing the in-flight flag *before*
/// announcing, so a follow-up invocation never races the flag).
#[allow(clippy::too_many_arguments)]
fn worker_loop<A: Actor>(
    mut node: NodeCore<A>,
    epoch: Instant,
    offset: ClockOffset,
    rx: &Receiver<Input<A>>,
    transport: &mut ChannelTransport<A>,
    history: &Arc<Mutex<History<A::Op, A::Resp>>>,
    in_flight: &AtomicBool,
    done_tx: &Sender<(ProcessId, OpId)>,
    resp_tx: &Sender<A::Resp>,
    trace: Option<&RtTraceSink>,
) {
    let pid = node.pid();
    let mut trace_out = RtTrace(trace);
    let mut shutdown = false;
    let mut fired: u64 = 0;

    /// Relays a completed operation: clears the in-flight flag, then
    /// answers the blocking client and the done channel.
    fn finish<A: Actor>(
        act: Activation,
        pid: ProcessId,
        history: &Mutex<History<A::Op, A::Resp>>,
        in_flight: &AtomicBool,
        resp_tx: &Sender<A::Resp>,
        done_tx: &Sender<(ProcessId, OpId)>,
    ) {
        let Activation::Completed(op_id) = act else {
            return;
        };
        let resp = {
            let history = history.lock().unwrap();
            history
                .get(op_id)
                .expect("completed op is recorded")
                .resp()
                .expect("completion implies a response")
                .clone()
        };
        in_flight.store(false, Ordering::Release);
        // Closed ends mean the counterpart was dropped; not an error.
        let _ = resp_tx.send(resp);
        let _ = done_tx.send((pid, op_id));
    }

    // `ChannelTransport` never fails a send, so activation errors are
    // unreachable in this backend.
    let act = node
        .on_start(
            stamp_now(epoch, offset),
            transport,
            &mut trace_out,
            &mut SharedHistory(history),
        )
        .expect("in-process transport is infallible");
    finish::<A>(act, pid, history, in_flight, resp_tx, done_tx);

    loop {
        // Fire due timers first.
        while let Some(t) = transport.pop_due() {
            let act = node
                .on_timer(
                    stamp_now(epoch, offset),
                    t.id,
                    t.timer,
                    transport,
                    &mut trace_out,
                    &mut SharedHistory(history),
                )
                .expect("in-process transport is infallible");
            if !matches!(act, Activation::Stale) {
                fired += 1;
            }
            finish::<A>(act, pid, history, in_flight, resp_tx, done_tx);
        }
        if shutdown && !transport.has_pending() {
            break;
        }
        let timeout = transport
            .next_deadline()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Input::Shutdown) => shutdown = true,
            Ok(Input::Invoke(op_id, op)) => {
                let act = node
                    .on_invoke_recorded(
                        stamp_now(epoch, offset),
                        op_id,
                        op,
                        transport,
                        &mut trace_out,
                        &mut SharedHistory(history),
                    )
                    .expect("in-process transport is infallible");
                finish::<A>(act, pid, history, in_flight, resp_tx, done_tx);
            }
            Ok(Input::Deliver(from, id, msg)) => {
                let act = node
                    .on_message(
                        stamp_now(epoch, offset),
                        from,
                        id,
                        msg,
                        transport,
                        &mut trace_out,
                        &mut SharedHistory(history),
                    )
                    .expect("in-process transport is infallible");
                finish::<A>(act, pid, history, in_flight, resp_tx, done_tx);
            }
            Ok(Input::DeliverBatch(from, first_id, msgs)) => {
                let act = node
                    .on_message_batch(
                        stamp_now(epoch, offset),
                        from,
                        first_id,
                        msgs,
                        transport,
                        &mut trace_out,
                        &mut SharedHistory(history),
                    )
                    .expect("in-process transport is infallible");
                finish::<A>(act, pid, history, in_flight, resp_tx, done_tx);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // One counter line per worker; trace consumers sum across processes.
    if let Some(sink) = trace {
        sink.lock().unwrap().counter("rt", "timers_fired", fired);
    }
}

/// Runs `actors` on real threads, injecting message delays drawn uniformly
/// from `bounds` (seeded by `seed`), executing `script`, and returning the
/// observed [`History`].
///
/// The runtime shuts down `settle` after the last scripted invocation's
/// response; in-flight messages beyond that point are dropped, so choose
/// `settle` comfortably above `d`.
///
/// # Panics
///
/// Panics if `actors` is empty, its length differs from `clocks`, the
/// script overlaps invocations at one process, or a worker thread panics
/// (e.g. an actor invariant fails).
pub fn run_threaded<A>(
    actors: Vec<A>,
    clocks: &ClockAssignment,
    bounds: DelayBounds,
    seed: u64,
    script: Vec<RtInvocation<A::Op>>,
    settle: Duration,
) -> History<A::Op, A::Resp>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    A::Op: Clone + Send + Sync + 'static,
    A::Resp: Send + 'static,
    A::Timer: Send + 'static,
{
    let cluster = RtCluster::start(actors, clocks, bounds, seed);
    // A timed script is just a driver with no follow-up invocations.
    let mut driver = Script::new();
    for inv in script {
        driver.push(inv.pid, SimTime::from_ticks(inv.at.as_ticks()), inv.op);
    }
    cluster.run_driver(&mut driver);
    cluster.shutdown(settle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Context;
    use crate::ids::TimerId;

    /// Each process forwards its op value to the next process and responds
    /// when the ring token returns.
    #[derive(Debug, Default)]
    struct Ring;

    impl Actor for Ring {
        type Msg = u32;
        type Op = u32;
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            let next = ProcessId::new((ctx.pid().as_u32() + 1) % ctx.n() as u32);
            ctx.send(next, op);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Context<'_, Self>) {
            if ctx.pid() == ProcessId::new(0) {
                ctx.respond(msg);
            } else {
                let next = ProcessId::new((ctx.pid().as_u32() + 1) % ctx.n() as u32);
                ctx.send(next, msg);
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {}
    }

    #[test]
    fn ring_completes_on_threads() {
        let bounds = DelayBounds::new(
            SimDuration::from_ticks(2000), // 2 ms
            SimDuration::from_ticks(1000),
        );
        let history = run_threaded(
            vec![Ring, Ring, Ring],
            &ClockAssignment::zero(3),
            bounds,
            7,
            vec![RtInvocation {
                pid: ProcessId::new(0),
                at: SimDuration::ZERO,
                op: 42,
            }],
            Duration::from_millis(20),
        );
        assert!(history.is_complete());
        assert_eq!(history.records()[0].resp(), Some(&42));
        // Three hops of ≥ 1 ms each.
        assert!(history.records()[0].latency().unwrap().as_ticks() >= 3000);
    }

    /// On invoke, broadcast a `send_batch` to every peer; peers ack the
    /// whole batch with one message; the origin responds once every
    /// peer has acked.
    #[derive(Debug, Default)]
    struct BatchFlood {
        acks: u32,
    }

    impl Actor for BatchFlood {
        type Msg = i64; // −1 = batch ack, anything else = payload
        type Op = u32; // batch size
        type Resp = u32; // acks received
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            for p in 0..ctx.n() as u32 {
                let p = ProcessId::new(p);
                if p != ctx.pid() {
                    ctx.send_batch(p, (0..i64::from(op)).collect());
                }
            }
        }

        fn on_message(&mut self, _from: ProcessId, msg: i64, ctx: &mut Context<'_, Self>) {
            if msg == -1 {
                self.acks += 1;
                if self.acks == ctx.n() as u32 - 1 {
                    ctx.respond(self.acks);
                }
            }
        }

        fn on_message_batch(
            &mut self,
            from: ProcessId,
            msgs: Vec<i64>,
            ctx: &mut Context<'_, Self>,
        ) {
            assert!(!msgs.is_empty());
            ctx.send(from, -1);
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {}
    }

    /// Regression: tearing the cluster down with zero settle while
    /// batches (and the acks they trigger) are still queued inside the
    /// router must not drop them. The router used to break out of its
    /// loop the moment it saw the shutdown marker, silently discarding
    /// its delivery heap; now it drains to quiescence first, so the
    /// flooded run still completes.
    #[test]
    fn shutdown_drains_in_flight_batches() {
        let bounds = DelayBounds::new(
            SimDuration::from_ticks(2000), // 2 ms
            SimDuration::from_ticks(1000),
        );
        let cluster = RtCluster::start(
            vec![
                BatchFlood::default(),
                BatchFlood::default(),
                BatchFlood::default(),
            ],
            &ClockAssignment::zero(3),
            bounds,
            11,
        );
        cluster.invoke_async(ProcessId::new(0), 64);
        // No settle: the 64-message batches are still in flight.
        let history = cluster.shutdown(Duration::ZERO);
        assert!(
            history.is_complete(),
            "teardown dropped in-flight batches: {history:?}"
        );
        assert_eq!(history.records()[0].resp(), Some(&2));
    }

    /// Timer-driven response with injected delay bounds honoured.
    #[derive(Debug, Default)]
    struct TimerEcho;

    impl Actor for TimerEcho {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = u32;

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            ctx.set_timer(SimDuration::from_ticks(1000), op);
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, t: u32, ctx: &mut Context<'_, Self>) {
            ctx.respond(t + 1);
        }
    }

    #[test]
    fn timers_fire_on_threads() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let history = run_threaded(
            vec![TimerEcho],
            &ClockAssignment::zero(1),
            bounds,
            1,
            vec![
                RtInvocation {
                    pid: ProcessId::new(0),
                    at: SimDuration::ZERO,
                    op: 1,
                },
                RtInvocation {
                    pid: ProcessId::new(0),
                    // Generous spacing: under full-suite parallel load the
                    // OS may delay the first timer by many milliseconds.
                    at: SimDuration::from_ticks(250_000),
                    op: 2,
                },
            ],
            Duration::from_millis(5),
        );
        assert!(history.is_complete());
        assert_eq!(history.records()[0].resp(), Some(&2));
        assert_eq!(history.records()[1].resp(), Some(&3));
        // The timer wait is 1 ms; latency must be at least that.
        assert!(history.records()[0].latency().unwrap().as_ticks() >= 1000);
    }

    /// Captures both events and counters emitted by the worker threads.
    #[derive(Debug, Default)]
    struct RecordingSink {
        trace: crate::trace::Trace,
        counters: Vec<(&'static str, &'static str, u64)>,
    }

    impl TraceSink for RecordingSink {
        fn event(&mut self, event: &TraceEvent) {
            self.trace.event(event);
        }
        fn counter(&mut self, stage: &'static str, name: &'static str, value: u64) {
            self.counters.push((stage, name, value));
        }
    }

    #[test]
    fn traced_cluster_pairs_sends_with_deliveries() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(2000), SimDuration::from_ticks(1000));
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let mut cluster = RtCluster::start_traced(
            vec![Ring, Ring, Ring],
            &ClockAssignment::zero(3),
            bounds,
            7,
            Arc::clone(&sink) as RtTraceSink,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        assert_eq!(c0.invoke(42), 42);
        drop(c0);
        let history = cluster.shutdown(Duration::from_millis(20));
        assert!(history.is_complete());

        let sink = sink.lock().unwrap();
        let events = sink.trace.events();
        let count = |want: &str| events.iter().filter(|e| e.kind.label() == want).count();
        assert_eq!(count("invoke"), 1);
        assert_eq!(count("respond"), 1);
        assert_eq!(count("send"), 3);
        assert_eq!(count("deliver"), 3);
        // Every send pairs with exactly one later delivery carrying the
        // same message id, at the process the send addressed.
        for e in events {
            if let crate::trace::TraceEventKind::Send { to, msg, .. } = &e.kind {
                let delivered = events
                    .iter()
                    .filter(|d| {
                        d.pid == *to
                            && d.at >= e.at
                            && matches!(&d.kind, crate::trace::TraceEventKind::Recv { msg: m, .. } if m == msg)
                    })
                    .count();
                assert_eq!(delivered, 1, "send {msg:?} should deliver once at {to}");
            }
        }
        // One exit counter per worker; Ring arms no timers.
        assert_eq!(sink.counters.len(), 3);
        assert!(sink
            .counters
            .iter()
            .all(|c| *c == ("rt", "timers_fired", 0)));
    }

    #[test]
    fn traced_cluster_records_timer_events() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let mut cluster = RtCluster::start_traced(
            vec![TimerEcho],
            &ClockAssignment::zero(1),
            bounds,
            1,
            Arc::clone(&sink) as RtTraceSink,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        assert_eq!(c0.invoke(5), 6);
        drop(c0);
        let _ = cluster.shutdown(Duration::from_millis(5));
        let sink = sink.lock().unwrap();
        let labels: Vec<_> = sink.trace.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, ["invoke", "timer-set", "timer-fire", "respond"]);
        assert_eq!(sink.counters, [("rt", "timers_fired", 1)]);
    }

    #[test]
    fn interactive_clients_block_per_invocation() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(
            vec![TimerEcho, TimerEcho],
            &ClockAssignment::zero(2),
            bounds,
            3,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        let mut c1 = cluster.client(ProcessId::new(1));
        assert_eq!(c0.invoke(10), 11);
        assert_eq!(c1.invoke(20), 21);
        assert_eq!(c0.invoke(30), 31);
        drop((c0, c1));
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 3);
    }

    /// A second async invocation while the first is still in flight must
    /// be rejected — the silent one-pending-op violation this runtime
    /// used to allow.
    #[test]
    fn overlapping_async_invocations_rejected() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let cluster = RtCluster::start(
            vec![TimerEcho, TimerEcho],
            &ClockAssignment::zero(2),
            bounds,
            3,
        );
        // The first op waits on a 1 ms timer before responding.
        cluster.invoke_async(ProcessId::new(0), 1);
        assert_eq!(
            cluster.try_invoke_async(ProcessId::new(0), 2),
            Err(OpPending {
                pid: ProcessId::new(0)
            })
        );
        // A different process is unaffected.
        assert_eq!(cluster.try_invoke_async(ProcessId::new(1), 3), Ok(()));
        cluster.wait_for(2);
        // After the responses, both processes accept new work.
        assert_eq!(cluster.try_invoke_async(ProcessId::new(0), 4), Ok(()));
        cluster.wait_for(1);
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 3);
    }

    #[test]
    #[should_panic(expected = "another operation is pending")]
    fn overlapping_invoke_async_panics() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let cluster = RtCluster::start(vec![TimerEcho], &ClockAssignment::zero(1), bounds, 3);
        cluster.invoke_async(ProcessId::new(0), 1);
        cluster.invoke_async(ProcessId::new(0), 2);
    }

    /// Op 0 arms a timer and responds when it fires (remembering the id);
    /// op 1 cancels the remembered — by then already fired — timer and
    /// responds with the fire count.
    #[derive(Debug, Default)]
    struct CancelRace {
        armed: Option<TimerId>,
        fired: u32,
    }

    impl Actor for CancelRace {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            match op {
                0 => self.armed = Some(ctx.set_timer(SimDuration::from_ticks(1000), ())),
                _ => {
                    if let Some(id) = self.armed {
                        ctx.cancel_timer(id);
                    }
                    ctx.respond(self.fired);
                }
            }
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _t: (), ctx: &mut Context<'_, Self>) {
            self.fired += 1;
            ctx.respond(self.fired);
        }
    }

    /// Cancelling a timer *after* it fired must be a no-op: the slab id
    /// is stale by then, so the cancel neither panics nor disturbs later
    /// timers — the invariant the engine's generation scheme promises,
    /// checked here on the real-thread runtime where the fire and the
    /// cancel race through separate queue hops.
    #[test]
    fn cancel_after_fire_is_a_noop() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(
            vec![CancelRace::default()],
            &ClockAssignment::zero(1),
            bounds,
            11,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        // Blocks until the timer fires and responds.
        assert_eq!(c0.invoke(0), 1);
        // The remembered id is now stale; cancelling it must not panic
        // and must not affect anything else.
        assert_eq!(c0.invoke(1), 1);
        // A fresh arm still works after the stale cancel.
        assert_eq!(c0.invoke(0), 2);
        drop(c0);
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 3);
    }

    /// Arms a long timer and responds immediately, leaving the timer
    /// pending at shutdown.
    #[derive(Debug, Default)]
    struct SlowTimer {
        fired: bool,
    }

    impl Actor for SlowTimer {
        type Msg = ();
        type Op = ();
        type Resp = ();
        type Timer = ();

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            ctx.set_timer(SimDuration::from_ticks(20_000), ()); // 20 ms
            ctx.respond(());
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {
            self.fired = true;
        }
    }

    /// Shutdown with a timer still pending must drain it — the worker
    /// loop only exits once its timer list is empty, so the runtime
    /// neither hangs nor drops armed timers on the floor.
    #[test]
    fn shutdown_drains_pending_timers() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let history = run_threaded(
            vec![SlowTimer::default()],
            &ClockAssignment::zero(1),
            bounds,
            5,
            vec![RtInvocation {
                pid: ProcessId::new(0),
                at: SimDuration::ZERO,
                op: (),
            }],
            Duration::from_millis(1),
        );
        // The op responded instantly; the join in shutdown() only
        // returned because the worker drained the pending 20 ms timer
        // first (a hang here would trip the test harness timeout).
        assert!(history.is_complete());
        assert_eq!(history.len(), 1);
    }

    /// The drain must actually *wait* for the pending timer, not discard
    /// it: measure that shutdown takes at least the timer's delay.
    #[test]
    fn shutdown_waits_for_pending_timers_to_fire() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let cluster = RtCluster::start(
            vec![SlowTimer::default()],
            &ClockAssignment::zero(1),
            bounds,
            5,
        );
        cluster.invoke_async(ProcessId::new(0), ());
        cluster.wait_for(1);
        let before = Instant::now();
        let history = cluster.shutdown(Duration::from_millis(1));
        // 20 ms timer armed at invocation; shutdown began within a few
        // ms of that, so the drain accounts for most of the wait.
        assert!(
            before.elapsed() >= Duration::from_millis(10),
            "shutdown returned before the pending timer could have fired"
        );
        assert!(history.is_complete());
    }

    #[test]
    #[should_panic(expected = "client already taken")]
    fn clients_are_unique_per_process() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(vec![TimerEcho], &ClockAssignment::zero(1), bounds, 3);
        let _a = cluster.client(ProcessId::new(0));
        let _b = cluster.client(ProcessId::new(0));
    }

    /// A driver-run closed loop on the rt backend: every process issues
    /// its quota sequentially and the history completes.
    #[test]
    fn run_driver_executes_a_closed_loop() {
        use crate::workload::ClosedLoop;

        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let cluster = RtCluster::start(
            vec![TimerEcho, TimerEcho],
            &ClockAssignment::zero(2),
            bounds,
            9,
        );
        let mut driver = ClosedLoop::new(
            vec![ProcessId::new(0), ProcessId::new(1)],
            3,
            42,
            |pid, idx, _rng| pid.as_u32() * 100 + u32::try_from(idx).unwrap(),
        );
        let completed = cluster.run_driver(&mut driver);
        assert_eq!(completed, 6);
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 6);
        // Per process, ops are issued in index order (closed loop).
        for pid in [ProcessId::new(0), ProcessId::new(1)] {
            let ops: Vec<u32> = history
                .records()
                .iter()
                .filter(|r| r.pid == pid)
                .map(|r| r.op)
                .collect();
            let base = pid.as_u32() * 100;
            assert_eq!(ops, vec![base, base + 1, base + 2]);
        }
    }
}
