//! A real-thread runtime for the same [`Actor`] state machines.
//!
//! The discrete-event engine is the measurement instrument; this runtime
//! exists to demonstrate that the shared-object implementations are not
//! simulator-bound: each process runs on an OS thread, messages travel
//! through mpsc channels with injected delays drawn from the same
//! `[d − u, d]` bounds, and clocks are wall-clock readings plus per-process
//! offsets. One tick is interpreted as one microsecond.
//!
//! Two entry points:
//!
//! * [`RtCluster`] — an interactive cluster: obtain an [`RtClient`] per
//!   process and call [`RtClient::invoke`] like a blocking RPC;
//! * [`run_threaded`] — batch mode: execute a timed script and return the
//!   observed [`History`].
//!
//! Because the OS scheduler adds real, unbounded noise, this runtime is
//! suitable for functional demonstrations (histories can still be checked
//! for linearizability) but not for measuring the tight time bounds — the
//! injected delay is a *lower* bound on actual delivery latency. Scheduling
//! noise can also perturb the relative order of closely spaced events, so
//! prefer workloads whose correctness does not hinge on exact tie-breaks.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, Context, Effects};
use crate::clock::ClockAssignment;
use crate::delay::DelayBounds;
use crate::history::History;
use crate::ids::{MsgId, OpId, ProcessId, TimerId};
use crate::time::{ClockOffset, SimDuration, SimTime};
use crate::timers::TimerSlab;
use crate::trace::{TraceEvent, TraceEventKind, TraceSink};

/// A trace sink shared by every worker thread of an [`RtCluster`].
///
/// Workers emit the same [`TraceEvent`]s as the discrete-event engine
/// (stamped with real time since the cluster epoch and the worker's
/// offset clock), serialised through the mutex. Keep a typed
/// `Arc<Mutex<S>>` clone before coercing to read the sink back after
/// [`RtCluster::shutdown`].
pub type RtTraceSink = Arc<Mutex<dyn TraceSink + Send>>;

/// A scripted invocation for [`run_threaded`].
#[derive(Debug, Clone)]
pub struct RtInvocation<O> {
    /// Target process.
    pub pid: ProcessId,
    /// Wall-clock offset from the start of the run, in ticks (µs).
    pub at: SimDuration,
    /// The operation.
    pub op: O,
}

enum Input<A: Actor> {
    Invoke(OpId, A::Op),
    Deliver(ProcessId, MsgId, A::Msg),
    Shutdown,
}

enum RouterMsg<M> {
    Send {
        from: ProcessId,
        to: ProcessId,
        id: MsgId,
        msg: M,
        deliver_at: Instant,
    },
    Shutdown,
}

struct HeapEntry<M> {
    deliver_at: Instant,
    seq: u64,
    to: ProcessId,
    from: ProcessId,
    id: MsgId,
    msg: M,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

fn ticks_to_duration(d: SimDuration) -> Duration {
    Duration::from_micros(d.as_ticks())
}

fn instant_to_sim(epoch: Instant, at: Instant) -> SimTime {
    let micros = at.saturating_duration_since(epoch).as_micros();
    SimTime::from_ticks(u64::try_from(micros).expect("run too long"))
}

/// A running cluster of actor threads plus the delay-injecting router.
///
/// # Examples
///
/// ```no_run
/// use std::time::Duration;
/// use skewbound_sim::prelude::*;
/// use skewbound_sim::rt::RtCluster;
///
/// # #[derive(Debug)] struct Echo;
/// # impl Actor for Echo {
/// #     type Msg = (); type Op = u32; type Resp = u32; type Timer = ();
/// #     fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) { ctx.respond(op + 1); }
/// #     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
/// #     fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
/// # }
/// let bounds = DelayBounds::new(SimDuration::from_ticks(2_000), SimDuration::from_ticks(1_000));
/// let mut cluster = RtCluster::start(
///     vec![Echo, Echo],
///     &ClockAssignment::zero(2),
///     bounds,
///     7,
/// );
/// let mut client = cluster.client(ProcessId::new(0));
/// assert_eq!(client.invoke(41), 42);
/// drop(client);
/// let history = cluster.shutdown(Duration::from_millis(10));
/// assert!(history.is_complete());
/// ```
pub struct RtCluster<A: Actor> {
    epoch: Instant,
    proc_txs: Vec<SyncSender<Input<A>>>,
    router_tx: Sender<RouterMsg<A::Msg>>,
    history: Arc<Mutex<History<A::Op, A::Resp>>>,
    resp_rxs: Vec<Option<Receiver<A::Resp>>>,
    done_rx: Receiver<()>,
    worker_handles: Vec<JoinHandle<()>>,
    router_handle: Option<JoinHandle<()>>,
}

impl<A: Actor> core::fmt::Debug for RtCluster<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RtCluster")
            .field("n", &self.proc_txs.len())
            .finish_non_exhaustive()
    }
}

/// A per-process handle for blocking invocations on an [`RtCluster`].
pub struct RtClient<A: Actor> {
    pid: ProcessId,
    epoch: Instant,
    proc_tx: SyncSender<Input<A>>,
    resp_rx: Receiver<A::Resp>,
    history: Arc<Mutex<History<A::Op, A::Resp>>>,
}

impl<A: Actor> core::fmt::Debug for RtClient<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RtClient").field("pid", &self.pid).finish()
    }
}

impl<A: Actor> RtClient<A> {
    /// Invokes `op` at this client's process and blocks until the
    /// response arrives (mirroring the one-pending-op application model).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has shut down or a worker died, or if no
    /// response arrives within 30 seconds.
    pub fn invoke(&mut self, op: A::Op) -> A::Resp {
        let op_id = self.history.lock().unwrap().record_invoke(
            self.pid,
            op.clone(),
            instant_to_sim(self.epoch, Instant::now()),
        );
        self.proc_tx
            .send(Input::Invoke(op_id, op))
            .expect("cluster has shut down");
        self.resp_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("no response within 30s")
    }
}

impl<A> RtCluster<A>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    A::Op: Send + 'static,
    A::Resp: Send + 'static,
    A::Timer: Send + 'static,
{
    /// Starts one thread per actor plus the router, injecting message
    /// delays drawn uniformly from `bounds` (seeded by `seed`).
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or its length differs from `clocks`.
    #[must_use]
    pub fn start(actors: Vec<A>, clocks: &ClockAssignment, bounds: DelayBounds, seed: u64) -> Self {
        Self::start_inner(actors, clocks, bounds, seed, None)
    }

    /// Like [`RtCluster::start`], but every worker additionally streams
    /// structured [`TraceEvent`]s into `sink` — the same six event kinds
    /// the discrete-event engine emits, stamped with real time since the
    /// cluster epoch and the worker's offset clock. Message ids are
    /// allocated in global send order, so each `send` pairs with exactly
    /// one `deliver` carrying the same id.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RtCluster::start`].
    #[must_use]
    pub fn start_traced(
        actors: Vec<A>,
        clocks: &ClockAssignment,
        bounds: DelayBounds,
        seed: u64,
        sink: RtTraceSink,
    ) -> Self {
        Self::start_inner(actors, clocks, bounds, seed, Some(sink))
    }

    fn start_inner(
        actors: Vec<A>,
        clocks: &ClockAssignment,
        bounds: DelayBounds,
        seed: u64,
        trace: Option<RtTraceSink>,
    ) -> Self {
        assert!(!actors.is_empty(), "at least one process required");
        assert_eq!(
            actors.len(),
            clocks.len(),
            "clocks must cover all processes"
        );
        assert!(
            clocks.is_drift_free(),
            "the real-thread runtime does not emulate clock drift"
        );
        let n = actors.len();
        let epoch = Instant::now();
        let history: Arc<Mutex<History<A::Op, A::Resp>>> = Arc::new(Mutex::new(History::new()));
        let (done_tx, done_rx) = channel::<()>();
        let (router_tx, router_rx) = channel::<RouterMsg<A::Msg>>();

        let mut proc_txs = Vec::with_capacity(n);
        let mut proc_rxs = Vec::with_capacity(n);
        let mut resp_txs = Vec::with_capacity(n);
        let mut resp_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel::<Input<A>>(1024);
            proc_txs.push(tx);
            proc_rxs.push(rx);
            let (rtx, rrx) = channel::<A::Resp>();
            resp_txs.push(rtx);
            resp_rxs.push(Some(rrx));
        }

        let router_handle = {
            let proc_txs = proc_txs.clone();
            thread::spawn(move || {
                let mut heap: BinaryHeap<HeapEntry<A::Msg>> = BinaryHeap::new();
                let mut seq = 0u64;
                loop {
                    let timeout = heap
                        .peek()
                        .map(|e| e.deliver_at.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_secs(3600));
                    match router_rx.recv_timeout(timeout) {
                        Ok(RouterMsg::Send {
                            from,
                            to,
                            id,
                            msg,
                            deliver_at,
                        }) => {
                            heap.push(HeapEntry {
                                deliver_at,
                                seq,
                                to,
                                from,
                                id,
                                msg,
                            });
                            seq += 1;
                        }
                        Ok(RouterMsg::Shutdown) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    while let Some(e) = heap.peek() {
                        if e.deliver_at > Instant::now() {
                            break;
                        }
                        let e = heap.pop().expect("peeked");
                        // A closed worker means shutdown is in progress.
                        let _ = proc_txs[e.to.index()].send(Input::Deliver(e.from, e.id, e.msg));
                    }
                }
            })
        };

        let msg_ids: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let mut worker_handles = Vec::with_capacity(n);
        for (idx, mut actor) in actors.into_iter().enumerate() {
            let pid = ProcessId::new(u32::try_from(idx).expect("too many processes"));
            let rx = proc_rxs.remove(0);
            let router_tx = router_tx.clone();
            let history = Arc::clone(&history);
            let done_tx = done_tx.clone();
            let resp_tx = resp_txs[idx].clone();
            let offset = clocks.offset(pid);
            let msg_ids = Arc::clone(&msg_ids);
            let trace = trace.clone();
            let mut rng =
                StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

            worker_handles.push(thread::spawn(move || {
                worker_loop(
                    pid,
                    n,
                    epoch,
                    offset,
                    &mut actor,
                    &rx,
                    &router_tx,
                    &history,
                    &done_tx,
                    &resp_tx,
                    &mut rng,
                    bounds,
                    &msg_ids,
                    trace.as_ref(),
                );
            }));
        }

        RtCluster {
            epoch,
            proc_txs,
            router_tx,
            history,
            resp_rxs,
            done_rx,
            worker_handles,
            router_handle: Some(router_handle),
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.proc_txs.len()
    }

    /// Takes the blocking client for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the client was already taken or `pid` is out of range.
    #[must_use]
    pub fn client(&mut self, pid: ProcessId) -> RtClient<A> {
        let resp_rx = self.resp_rxs[pid.index()]
            .take()
            .expect("client already taken");
        RtClient {
            pid,
            epoch: self.epoch,
            proc_tx: self.proc_txs[pid.index()].clone(),
            resp_rx,
            history: Arc::clone(&self.history),
        }
    }

    /// Fire-and-forget invocation: the response is recorded in the
    /// history (and consumes one [`RtCluster::wait_for`] credit) but not
    /// returned. Useful for timed scripts.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has shut down.
    pub fn invoke_async(&self, pid: ProcessId, op: A::Op) {
        let op_id = self.history.lock().unwrap().record_invoke(
            pid,
            op.clone(),
            instant_to_sim(self.epoch, Instant::now()),
        );
        self.proc_txs[pid.index()]
            .send(Input::Invoke(op_id, op))
            .expect("cluster has shut down");
    }

    /// Blocks until `count` operation responses have occurred since the
    /// cluster started (including ones answered through clients).
    ///
    /// # Panics
    ///
    /// Panics if the responses do not arrive within 30 seconds each.
    pub fn wait_for(&self, count: usize) {
        for _ in 0..count {
            self.done_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("timed out waiting for responses");
        }
    }

    /// Waits `settle` (for in-flight messages), stops all threads, and
    /// returns the observed history.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn shutdown(mut self, settle: Duration) -> History<A::Op, A::Resp> {
        thread::sleep(settle);
        for tx in &self.proc_txs {
            let _ = tx.send(Input::Shutdown);
        }
        let _ = self.router_tx.send(RouterMsg::Shutdown);
        for h in self.worker_handles.drain(..) {
            h.join().expect("worker thread panicked");
        }
        if let Some(h) = self.router_handle.take() {
            h.join().expect("router thread panicked");
        }
        let history = self.history.lock().unwrap().clone();
        history
    }
}

/// Emits one trace event stamped at the current instant (real time since
/// `epoch`, and the worker's local clock at that instant). The caller
/// guards on `trace.is_some()` so the untraced path builds no payloads.
fn emit_rt(
    trace: Option<&RtTraceSink>,
    epoch: Instant,
    offset: ClockOffset,
    pid: ProcessId,
    kind: TraceEventKind,
) {
    let Some(sink) = trace else { return };
    let at = instant_to_sim(epoch, Instant::now());
    sink.lock().unwrap().event(&TraceEvent {
        at,
        clock: at.to_clock(offset),
        pid,
        kind,
    });
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<A: Actor>(
    pid: ProcessId,
    n: usize,
    epoch: Instant,
    offset: ClockOffset,
    actor: &mut A,
    rx: &Receiver<Input<A>>,
    router_tx: &Sender<RouterMsg<A::Msg>>,
    history: &Arc<Mutex<History<A::Op, A::Resp>>>,
    done_tx: &Sender<()>,
    resp_tx: &Sender<A::Resp>,
    rng: &mut StdRng,
    bounds: DelayBounds,
    msg_ids: &AtomicU64,
    trace: Option<&RtTraceSink>,
) {
    struct PendingTimer<T> {
        fire_at: Instant,
        id: TimerId,
        timer: T,
    }

    let mut timers: Vec<PendingTimer<A::Timer>> = Vec::new();
    // Ids come from the same slab the engine uses; the worker's schedule
    // stays in the Vec (fire order needs `fire_at`), the slab just hands
    // out generation-stamped ids and retires them on cancel/fire.
    let mut timer_slab = TimerSlab::new();
    let mut pending_op: Option<OpId> = None;
    let mut shutdown = false;
    let mut fired: u64 = 0;

    #[allow(clippy::too_many_arguments)]
    fn apply<A: Actor>(
        pid: ProcessId,
        effects: Effects<A>,
        router_tx: &Sender<RouterMsg<A::Msg>>,
        history: &Arc<Mutex<History<A::Op, A::Resp>>>,
        done_tx: &Sender<()>,
        resp_tx: &Sender<A::Resp>,
        timers: &mut Vec<PendingTimer<A::Timer>>,
        timer_slab: &mut TimerSlab,
        pending_op: &mut Option<OpId>,
        rng: &mut StdRng,
        bounds: DelayBounds,
        epoch: Instant,
        offset: ClockOffset,
        msg_ids: &AtomicU64,
        trace: Option<&RtTraceSink>,
    ) {
        let Effects {
            sends,
            timers: new_timers,
            cancels,
            response,
        } = effects;
        for (to, msg) in sends {
            let ticks = rng.gen_range(bounds.min().as_ticks()..=bounds.max().as_ticks());
            let deliver_at = Instant::now() + ticks_to_duration(SimDuration::from_ticks(ticks));
            let id = MsgId::new(msg_ids.fetch_add(1, Ordering::Relaxed));
            if trace.is_some() {
                emit_rt(
                    trace,
                    epoch,
                    offset,
                    pid,
                    TraceEventKind::Send {
                        to,
                        msg: id,
                        payload: format!("{msg:?}"),
                    },
                );
            }
            let _ = router_tx.send(RouterMsg::Send {
                from: pid,
                to,
                id,
                msg,
                deliver_at,
            });
        }
        for (id, delay, timer) in new_timers {
            if trace.is_some() {
                emit_rt(
                    trace,
                    epoch,
                    offset,
                    pid,
                    TraceEventKind::TimerSet {
                        tag: format!("{timer:?}"),
                        delay,
                    },
                );
            }
            timers.push(PendingTimer {
                fire_at: Instant::now() + ticks_to_duration(delay),
                id,
                timer,
            });
        }
        for id in cancels {
            if timer_slab.cancel(id) {
                timers.retain(|t| t.id != id);
            }
        }
        if let Some(resp) = response {
            let op_id = pending_op
                .take()
                .unwrap_or_else(|| panic!("{pid}: response with no pending op"));
            if trace.is_some() {
                emit_rt(
                    trace,
                    epoch,
                    offset,
                    pid,
                    TraceEventKind::Respond {
                        resp: format!("{resp:?}"),
                    },
                );
            }
            history.lock().unwrap().record_response(
                op_id,
                resp.clone(),
                instant_to_sim(epoch, Instant::now()),
            );
            let _ = resp_tx.send(resp);
            let _ = done_tx.send(());
        }
    }

    loop {
        // Fire due timers first.
        loop {
            let now = Instant::now();
            let due = timers
                .iter()
                .enumerate()
                .filter(|(_, t)| t.fire_at <= now)
                .min_by_key(|(_, t)| (t.fire_at, t.id))
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let t = timers.swap_remove(i);
            timer_slab.fire(t.id);
            fired += 1;
            if trace.is_some() {
                emit_rt(
                    trace,
                    epoch,
                    offset,
                    pid,
                    TraceEventKind::Timer {
                        tag: format!("{:?}", t.timer),
                    },
                );
            }
            let mut effects = Effects::new();
            {
                let clock = instant_to_sim(epoch, Instant::now()).to_clock(offset);
                let mut ctx = Context::new(pid, n, clock, &mut timer_slab, &mut effects);
                actor.on_timer(t.timer, &mut ctx);
            }
            apply(
                pid,
                effects,
                router_tx,
                history,
                done_tx,
                resp_tx,
                &mut timers,
                &mut timer_slab,
                &mut pending_op,
                rng,
                bounds,
                epoch,
                offset,
                msg_ids,
                trace,
            );
        }
        if shutdown && timers.is_empty() {
            break;
        }
        let timeout = timers
            .iter()
            .map(|t| t.fire_at)
            .min()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Input::Shutdown) => shutdown = true,
            Ok(input) => {
                let mut effects = Effects::new();
                {
                    let clock = instant_to_sim(epoch, Instant::now()).to_clock(offset);
                    let mut ctx = Context::new(pid, n, clock, &mut timer_slab, &mut effects);
                    match input {
                        Input::Invoke(op_id, op) => {
                            assert!(
                                pending_op.is_none(),
                                "{pid}: invocation while an operation is pending"
                            );
                            pending_op = Some(op_id);
                            if trace.is_some() {
                                emit_rt(
                                    trace,
                                    epoch,
                                    offset,
                                    pid,
                                    TraceEventKind::Invoke {
                                        op: format!("{op:?}"),
                                    },
                                );
                            }
                            actor.on_invoke(op, &mut ctx);
                        }
                        Input::Deliver(from, id, msg) => {
                            if trace.is_some() {
                                emit_rt(
                                    trace,
                                    epoch,
                                    offset,
                                    pid,
                                    TraceEventKind::Recv { from, msg: id },
                                );
                            }
                            actor.on_message(from, msg, &mut ctx);
                        }
                        Input::Shutdown => unreachable!("handled above"),
                    }
                }
                apply(
                    pid,
                    effects,
                    router_tx,
                    history,
                    done_tx,
                    resp_tx,
                    &mut timers,
                    &mut timer_slab,
                    &mut pending_op,
                    rng,
                    bounds,
                    epoch,
                    offset,
                    msg_ids,
                    trace,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // One counter line per worker; trace consumers sum across processes.
    if let Some(sink) = trace {
        sink.lock().unwrap().counter("rt", "timers_fired", fired);
    }
}

/// Runs `actors` on real threads, injecting message delays drawn uniformly
/// from `bounds` (seeded by `seed`), executing `script`, and returning the
/// observed [`History`].
///
/// The runtime shuts down `settle` after the last scripted invocation's
/// response; in-flight messages beyond that point are dropped, so choose
/// `settle` comfortably above `d`.
///
/// # Panics
///
/// Panics if `actors` is empty, its length differs from `clocks`, or a
/// worker thread panics (e.g. an actor invariant fails).
pub fn run_threaded<A>(
    actors: Vec<A>,
    clocks: &ClockAssignment,
    bounds: DelayBounds,
    seed: u64,
    script: Vec<RtInvocation<A::Op>>,
    settle: Duration,
) -> History<A::Op, A::Resp>
where
    A: Actor + Send + 'static,
    A::Msg: Send + 'static,
    A::Op: Send + Sync + 'static,
    A::Resp: Send + 'static,
    A::Timer: Send + 'static,
{
    let cluster = RtCluster::start(actors, clocks, bounds, seed);
    let epoch = cluster.epoch;
    let mut script = script;
    script.sort_by_key(|inv| inv.at);
    let total_ops = script.len();
    for inv in script {
        let target = epoch + ticks_to_duration(inv.at);
        let now = Instant::now();
        if target > now {
            thread::sleep(target - now);
        }
        cluster.invoke_async(inv.pid, inv.op);
    }
    cluster.wait_for(total_ops);
    cluster.shutdown(settle)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each process forwards its op value to the next process and responds
    /// when the ring token returns.
    #[derive(Debug, Default)]
    struct Ring;

    impl Actor for Ring {
        type Msg = u32;
        type Op = u32;
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            let next = ProcessId::new((ctx.pid().as_u32() + 1) % ctx.n() as u32);
            ctx.send(next, op);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Context<'_, Self>) {
            if ctx.pid() == ProcessId::new(0) {
                ctx.respond(msg);
            } else {
                let next = ProcessId::new((ctx.pid().as_u32() + 1) % ctx.n() as u32);
                ctx.send(next, msg);
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {}
    }

    #[test]
    fn ring_completes_on_threads() {
        let bounds = DelayBounds::new(
            SimDuration::from_ticks(2000), // 2 ms
            SimDuration::from_ticks(1000),
        );
        let history = run_threaded(
            vec![Ring, Ring, Ring],
            &ClockAssignment::zero(3),
            bounds,
            7,
            vec![RtInvocation {
                pid: ProcessId::new(0),
                at: SimDuration::ZERO,
                op: 42,
            }],
            Duration::from_millis(20),
        );
        assert!(history.is_complete());
        assert_eq!(history.records()[0].resp(), Some(&42));
        // Three hops of ≥ 1 ms each.
        assert!(history.records()[0].latency().unwrap().as_ticks() >= 3000);
    }

    /// Timer-driven response with injected delay bounds honoured.
    #[derive(Debug, Default)]
    struct TimerEcho;

    impl Actor for TimerEcho {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = u32;

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            ctx.set_timer(SimDuration::from_ticks(1000), op);
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, t: u32, ctx: &mut Context<'_, Self>) {
            ctx.respond(t + 1);
        }
    }

    #[test]
    fn timers_fire_on_threads() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let history = run_threaded(
            vec![TimerEcho],
            &ClockAssignment::zero(1),
            bounds,
            1,
            vec![
                RtInvocation {
                    pid: ProcessId::new(0),
                    at: SimDuration::ZERO,
                    op: 1,
                },
                RtInvocation {
                    pid: ProcessId::new(0),
                    // Generous spacing: under full-suite parallel load the
                    // OS may delay the first timer by many milliseconds.
                    at: SimDuration::from_ticks(250_000),
                    op: 2,
                },
            ],
            Duration::from_millis(5),
        );
        assert!(history.is_complete());
        assert_eq!(history.records()[0].resp(), Some(&2));
        assert_eq!(history.records()[1].resp(), Some(&3));
        // The timer wait is 1 ms; latency must be at least that.
        assert!(history.records()[0].latency().unwrap().as_ticks() >= 1000);
    }

    /// Captures both events and counters emitted by the worker threads.
    #[derive(Debug, Default)]
    struct RecordingSink {
        trace: crate::trace::Trace,
        counters: Vec<(&'static str, &'static str, u64)>,
    }

    impl TraceSink for RecordingSink {
        fn event(&mut self, event: &TraceEvent) {
            self.trace.event(event);
        }
        fn counter(&mut self, stage: &'static str, name: &'static str, value: u64) {
            self.counters.push((stage, name, value));
        }
    }

    #[test]
    fn traced_cluster_pairs_sends_with_deliveries() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(2000), SimDuration::from_ticks(1000));
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let mut cluster = RtCluster::start_traced(
            vec![Ring, Ring, Ring],
            &ClockAssignment::zero(3),
            bounds,
            7,
            Arc::clone(&sink) as RtTraceSink,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        assert_eq!(c0.invoke(42), 42);
        drop(c0);
        let history = cluster.shutdown(Duration::from_millis(20));
        assert!(history.is_complete());

        let sink = sink.lock().unwrap();
        let events = sink.trace.events();
        let count = |want: &str| events.iter().filter(|e| e.kind.label() == want).count();
        assert_eq!(count("invoke"), 1);
        assert_eq!(count("respond"), 1);
        assert_eq!(count("send"), 3);
        assert_eq!(count("deliver"), 3);
        // Every send pairs with exactly one later delivery carrying the
        // same message id, at the process the send addressed.
        for e in events {
            if let TraceEventKind::Send { to, msg, .. } = &e.kind {
                let delivered = events
                    .iter()
                    .filter(|d| {
                        d.pid == *to
                            && d.at >= e.at
                            && matches!(&d.kind, TraceEventKind::Recv { msg: m, .. } if m == msg)
                    })
                    .count();
                assert_eq!(delivered, 1, "send {msg:?} should deliver once at {to}");
            }
        }
        // One exit counter per worker; Ring arms no timers.
        assert_eq!(sink.counters.len(), 3);
        assert!(sink
            .counters
            .iter()
            .all(|c| *c == ("rt", "timers_fired", 0)));
    }

    #[test]
    fn traced_cluster_records_timer_events() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let mut cluster = RtCluster::start_traced(
            vec![TimerEcho],
            &ClockAssignment::zero(1),
            bounds,
            1,
            Arc::clone(&sink) as RtTraceSink,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        assert_eq!(c0.invoke(5), 6);
        drop(c0);
        let _ = cluster.shutdown(Duration::from_millis(5));
        let sink = sink.lock().unwrap();
        let labels: Vec<_> = sink.trace.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, ["invoke", "timer-set", "timer-fire", "respond"]);
        assert_eq!(sink.counters, [("rt", "timers_fired", 1)]);
    }

    #[test]
    fn interactive_clients_block_per_invocation() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(
            vec![TimerEcho, TimerEcho],
            &ClockAssignment::zero(2),
            bounds,
            3,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        let mut c1 = cluster.client(ProcessId::new(1));
        assert_eq!(c0.invoke(10), 11);
        assert_eq!(c1.invoke(20), 21);
        assert_eq!(c0.invoke(30), 31);
        drop((c0, c1));
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 3);
    }

    /// Op 0 arms a timer and responds when it fires (remembering the id);
    /// op 1 cancels the remembered — by then already fired — timer and
    /// responds with the fire count.
    #[derive(Debug, Default)]
    struct CancelRace {
        armed: Option<TimerId>,
        fired: u32,
    }

    impl Actor for CancelRace {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            match op {
                0 => self.armed = Some(ctx.set_timer(SimDuration::from_ticks(1000), ())),
                _ => {
                    if let Some(id) = self.armed {
                        ctx.cancel_timer(id);
                    }
                    ctx.respond(self.fired);
                }
            }
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _t: (), ctx: &mut Context<'_, Self>) {
            self.fired += 1;
            ctx.respond(self.fired);
        }
    }

    /// Cancelling a timer *after* it fired must be a no-op: the slab id
    /// is stale by then, so the cancel neither panics nor disturbs later
    /// timers — the invariant the engine's generation scheme promises,
    /// checked here on the real-thread runtime where the fire and the
    /// cancel race through separate queue hops.
    #[test]
    fn cancel_after_fire_is_a_noop() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(
            vec![CancelRace::default()],
            &ClockAssignment::zero(1),
            bounds,
            11,
        );
        let mut c0 = cluster.client(ProcessId::new(0));
        // Blocks until the timer fires and responds.
        assert_eq!(c0.invoke(0), 1);
        // The remembered id is now stale; cancelling it must not panic
        // and must not affect anything else.
        assert_eq!(c0.invoke(1), 1);
        // A fresh arm still works after the stale cancel.
        assert_eq!(c0.invoke(0), 2);
        drop(c0);
        let history = cluster.shutdown(Duration::from_millis(5));
        assert!(history.is_complete());
        assert_eq!(history.len(), 3);
    }

    /// Arms a long timer and responds immediately, leaving the timer
    /// pending at shutdown.
    #[derive(Debug, Default)]
    struct SlowTimer {
        fired: bool,
    }

    impl Actor for SlowTimer {
        type Msg = ();
        type Op = ();
        type Resp = ();
        type Timer = ();

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            ctx.set_timer(SimDuration::from_ticks(20_000), ()); // 20 ms
            ctx.respond(());
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {
            self.fired = true;
        }
    }

    /// Shutdown with a timer still pending must drain it — the worker
    /// loop only exits once its timer list is empty, so the runtime
    /// neither hangs nor drops armed timers on the floor.
    #[test]
    fn shutdown_drains_pending_timers() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let history = run_threaded(
            vec![SlowTimer::default()],
            &ClockAssignment::zero(1),
            bounds,
            5,
            vec![RtInvocation {
                pid: ProcessId::new(0),
                at: SimDuration::ZERO,
                op: (),
            }],
            Duration::from_millis(1),
        );
        // The op responded instantly; the join in shutdown() only
        // returned because the worker drained the pending 20 ms timer
        // first (a hang here would trip the test harness timeout).
        assert!(history.is_complete());
        assert_eq!(history.len(), 1);
    }

    /// The drain must actually *wait* for the pending timer, not discard
    /// it: measure that shutdown takes at least the timer's delay.
    #[test]
    fn shutdown_waits_for_pending_timers_to_fire() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let cluster = RtCluster::start(
            vec![SlowTimer::default()],
            &ClockAssignment::zero(1),
            bounds,
            5,
        );
        cluster.invoke_async(ProcessId::new(0), ());
        cluster.wait_for(1);
        let before = Instant::now();
        let history = cluster.shutdown(Duration::from_millis(1));
        // 20 ms timer armed at invocation; shutdown began within a few
        // ms of that, so the drain accounts for most of the wait.
        assert!(
            before.elapsed() >= Duration::from_millis(10),
            "shutdown returned before the pending timer could have fired"
        );
        assert!(history.is_complete());
    }

    #[test]
    #[should_panic(expected = "client already taken")]
    fn clients_are_unique_per_process() {
        let bounds = DelayBounds::new(SimDuration::from_ticks(1000), SimDuration::from_ticks(500));
        let mut cluster = RtCluster::start(vec![TimerEcho], &ClockAssignment::zero(1), bounds, 3);
        let _a = cluster.client(ProcessId::new(0));
        let _b = cluster.client(ProcessId::new(0));
    }
}
