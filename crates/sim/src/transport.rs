//! The pluggable transport layer: deliver-at-time semantics for
//! messages and timers.
//!
//! Both runtimes execute the same [`Actor`] state
//! machines through the same [`NodeCore`](crate::node::NodeCore); what
//! differs is *when and how* an enqueued message or timer expiry comes
//! back to a node. A [`Transport`] captures exactly that difference:
//!
//! * the discrete-event engine implements it with a virtual-time
//!   calendar queue ([`crate::equeue`]) — a send is assigned a delay by
//!   the [`DelayModel`] and popped back at
//!   `sent_at + delay` in deterministic `(time, seq)` order;
//! * the real-thread runtime implements it with a delay-injecting
//!   router thread plus per-worker mpsc channels — a send is assigned a
//!   seeded random delay within the same `[d − u, d]` bounds and
//!   delivered when the wall clock reaches `sent_at + delay`.
//!
//! Every message and timer a node produces passes through this single
//! choke point, which is what makes delay injection, trace pairing and
//! future drop/duplicate fault hooks land once for both backends.

use core::fmt;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::Rng;

use crate::actor::Actor;
use crate::clock::ClockAssignment;
use crate::delay::{DelayBounds, DelayModel, MsgMeta};
use crate::engine::{EventKind, MsgEvent};
use crate::equeue::CalendarQueue;
use crate::ids::{MsgId, OpId, ProcessId, TimerId};
use crate::slab::{Slab, SlabRef};
use crate::time::{ticks_to_duration, SimDuration, SimTime};

/// Why a transport failed to accept a send.
///
/// The in-process backends (the engine's `VirtualTransport`, the rt
/// runtime's `ChannelTransport`)
/// never fail — their queues are unbounded and intra-process — so every
/// path through them returns `Ok` unconditionally and stays
/// bit-identical to the infallible days. Byte-oriented cross-process
/// backends surface real failures: an unreachable peer, a codec reject,
/// a closed mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No live connection to `to` and reconnection is not (yet)
    /// possible.
    PeerUnreachable {
        /// The unreachable destination.
        to: ProcessId,
    },
    /// The payload could not be encoded for (or decoded from) the wire.
    Codec(String),
    /// The transport has been shut down; no further sends are accepted.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PeerUnreachable { to } => {
                write!(f, "peer {to} is unreachable")
            }
            TransportError::Codec(reason) => write!(f, "wire codec error: {reason}"),
            TransportError::Closed => write!(f, "transport is closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A backend that schedules message deliveries and timer expiries.
///
/// Implementations decide the *delivery time* of each message (the
/// delay model of the run) and own the queue/heap/channel machinery
/// that eventually hands the event back to the destination node. The
/// [`NodeCore`](crate::node::NodeCore) calls these methods while
/// draining one activation's effects; it never schedules anything
/// behind the transport's back.
///
/// Sends are fallible: in-process backends always return `Ok` (their
/// queues cannot fail), while cross-process backends report
/// [`TransportError`]s which the node core propagates to its scheduler.
pub trait Transport<A: Actor> {
    /// Assigns a delay to `msg` and enqueues its delivery at `to`
    /// (deliver-at-time semantics). Returns the run-unique message id,
    /// allocated in global send order so every `send` trace event pairs
    /// with exactly one later `deliver` carrying the same id.
    fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: A::Msg,
    ) -> Result<MsgId, TransportError>;

    /// Enqueues a delivery *batch*: `msgs` travel to `to` together,
    /// under one delay draw, and arrive as a single
    /// [`Actor::on_message_batch`] activation. Returns the id of the
    /// first message; the batch occupies ids `first..first + msgs.len()`
    /// consecutively so per-message trace events still pair up.
    ///
    /// The default forwards each message through [`Transport::send`] —
    /// correct but unamortized (one queue entry and one delay draw per
    /// message). The engine and the real-thread runtime both override it
    /// with true single-entry framing.
    ///
    /// # Panics
    ///
    /// Panics if `msgs` is empty.
    fn send_batch(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msgs: Vec<A::Msg>,
    ) -> Result<MsgId, TransportError> {
        let mut first = None;
        for msg in msgs {
            let id = self.send(from, to, msg)?;
            first.get_or_insert(id);
        }
        Ok(first.expect("empty delivery batch"))
    }

    /// Enqueues the expiry of timer `id` at `pid`, `delay` *local
    /// clock* ticks from now. The id is already live in the node's
    /// [`TimerSlab`](crate::timers::TimerSlab); the transport only
    /// schedules the expiry event (converting clock to real time if the
    /// backend models clock drift).
    fn set_timer(&mut self, pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer);

    /// Informs the backend that a previously scheduled timer was
    /// cancelled, so eager backends can prune its expiry from their
    /// schedule. The node has already retired the id in its slab, so a
    /// backend may also ignore this and drop the stale expiry when it
    /// comes due (the engine does; the real-thread runtime prunes so
    /// shutdown never waits on cancelled timers).
    fn cancel_timer(&mut self, pid: ProcessId, id: TimerId) {
        let _ = (pid, id);
    }
}

/// The byte-oriented half of the transport split: an object-safe
/// carrier of already-encoded frames.
///
/// [`Transport`] is generic over the actor — ideal in-process, where
/// messages move by value and never touch bytes — but a cross-process
/// backend (`skewbound-net`'s TCP mesh) can't be: it moves opaque
/// frames, and its codec lives above it. `WireTransport` is that lower
/// layer. A typed adapter encodes each `A::Msg` into a frame (the
/// `wire` codec in `skewbound-net`), hands the bytes here, and decodes
/// frames arriving from peers back into typed messages.
///
/// Object safety is the point: binaries hold a
/// `Box<dyn WireTransport>` chosen by config, without rebuilding the
/// replica stack per backend.
pub trait WireTransport: Send {
    /// Queues one encoded frame for delivery to `to`. Queuing is
    /// asynchronous: `Ok` means the frame was accepted for
    /// (re)transmission, not that the peer received it. Delivery is
    /// at-least-once under reconnects; receivers deduplicate by the
    /// frame header's message id.
    fn send_frame(&mut self, to: ProcessId, frame: &[u8]) -> Result<(), TransportError>;

    /// Requests that buffered frames be pushed to the wire now (a
    /// batching backend may coalesce sends until flushed). In-order
    /// per-destination delivery of previously accepted frames must be
    /// preserved.
    fn flush(&mut self) -> Result<(), TransportError>;

    /// The local process id this endpoint speaks as.
    fn local_pid(&self) -> ProcessId;
}

/// Above this process count, per-pair send counters move from a dense
/// `n * n` vector to a hash map: the dense table is fastest for grid
/// cells (n of a few dozen) but is quadratic in memory — 80 GB of
/// counters at n = 100 000.
const DENSE_PAIR_LIMIT: usize = 1024;

/// Per ordered pair `(from, to)` send counters, feeding
/// [`MsgMeta::pair_seq`]. Dense for small systems, sparse above
/// [`DENSE_PAIR_LIMIT`]; both give bit-identical counter sequences, so
/// scripted/enumerated delay models replay the same either way.
#[derive(Debug)]
pub(crate) enum PairSeq {
    /// Flat `from * n + to` vector (grids run millions of short
    /// simulations; a flat vector beats a hash map in the send path).
    Dense { counts: Vec<u64>, n: usize },
    /// `(from << 32) | to` keyed map, allocated per *used* pair only.
    Sparse(FxHashMap<u64, u64>),
}

impl PairSeq {
    pub(crate) fn new(n: usize) -> Self {
        if n <= DENSE_PAIR_LIMIT {
            PairSeq::Dense {
                counts: vec![0; n * n],
                n,
            }
        } else {
            PairSeq::Sparse(FxHashMap::default())
        }
    }

    /// Post-increments the counter of the ordered pair.
    #[inline]
    fn next(&mut self, from: ProcessId, to: ProcessId) -> u64 {
        let counter = match self {
            PairSeq::Dense { counts, n } => &mut counts[from.index() * *n + to.index()],
            PairSeq::Sparse(map) => map
                .entry((u64::from(from.as_u32()) << 32) | u64::from(to.as_u32()))
                .or_insert(0),
        };
        let seq = *counter;
        *counter += 1;
        seq
    }
}

/// Which payload slab a queued [`EvTag`] resolves through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvSlot {
    Invoke,
    Deliver,
    DeliverBatch,
    Timer,
}

/// One queued event in columnar form: the destination process, the
/// payload kind and the slab handle of the payload. 16 bytes of `Copy`
/// data — this is all the calendar queue moves around.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvTag {
    pub(crate) pid: ProcessId,
    pub(crate) kind: EvSlot,
    pub(crate) slot: SlabRef,
}

/// Slab payload of an in-flight message.
pub(crate) struct MsgPayload<M> {
    pub(crate) from: ProcessId,
    pub(crate) id: MsgId,
    pub(crate) msg: M,
}

/// Slab payload of an in-flight delivery batch: one queue entry and one
/// slab slot carry the whole batch, whose messages hold the consecutive
/// ids `first_id..first_id + msgs.len()`.
pub(crate) struct BatchPayload<M> {
    pub(crate) from: ProcessId,
    pub(crate) first_id: MsgId,
    pub(crate) msgs: Vec<M>,
}

/// The engine's [`Transport`]: a virtual-time calendar queue over
/// struct-of-arrays event storage.
///
/// A send is assigned a delay by the [`DelayModel`] (validated against
/// the bounds once at construction and asserted per call, in release
/// builds too), and
/// queued for delivery at `sent_at + delay`; a timer arm is converted
/// from local clock ticks to real time under the [`ClockAssignment`]
/// and queued at its expiry instant. The queue itself carries only
/// [`EvTag`]s — payloads live in per-kind generation-stamped
/// [`Slab`]s whose slots recycle, so steady-state scheduling allocates
/// nothing. Events pop back in deterministic `(time, seq)` order.
/// Cancelled timers are *not* pruned from the queue — the node core's
/// slab generation filters the stale expiry when it pops.
pub(crate) struct VirtualTransport<A: Actor, D: DelayModel> {
    pub(crate) clocks: ClockAssignment,
    pub(crate) delays: D,
    /// The model's admissible delay interval, hoisted at construction.
    bounds: DelayBounds,
    pub(crate) queue: CalendarQueue<EvTag>,
    pub(crate) ops: Slab<A::Op>,
    pub(crate) msgs: Slab<MsgPayload<A::Msg>>,
    pub(crate) batches: Slab<BatchPayload<A::Msg>>,
    pub(crate) timer_payloads: Slab<(TimerId, A::Timer)>,
    pub(crate) seq: u64,
    pub(crate) now: SimTime,
    pair_seq: PairSeq,
    pub(crate) n: usize,
    pub(crate) next_msg_id: u64,
    /// Send metadata, recorded only while [`Self::log_messages`] — the
    /// log grows with every send, which checkers need and sweeps do not.
    pub(crate) msg_log: Vec<MsgEvent>,
    pub(crate) log_messages: bool,
}

impl<A: Actor, D: DelayModel> VirtualTransport<A, D> {
    pub(crate) fn new(clocks: ClockAssignment, delays: D, n: usize) -> Self {
        let bounds = delays.bounds();
        VirtualTransport {
            clocks,
            // Pre-size the hot collections: a typical grid cell
            // schedules a handful of events per process at any instant,
            // within one delay bound of now.
            queue: CalendarQueue::new(4 * n, bounds.max()),
            ops: Slab::with_capacity(4),
            // Sized like the old event heap (8n + 16): a broadcast keeps
            // n - 1 messages in flight per concurrent writer, and growth
            // past capacity is a realloc-copy on the hot path.
            msgs: Slab::with_capacity(8 * n + 16),
            // Batched sends are opt-in; start empty and let the slab grow
            // to the workload's steady-state batch fan-out.
            batches: Slab::new(),
            timer_payloads: Slab::with_capacity(2 * n + 16),
            delays,
            bounds,
            seq: 0,
            now: SimTime::ZERO,
            pair_seq: PairSeq::new(n),
            n,
            next_msg_id: 0,
            msg_log: Vec::new(),
            log_messages: false,
        }
    }

    /// Turns on message-metadata logging, pre-sizing the log.
    pub(crate) fn enable_msg_log(&mut self) {
        self.log_messages = true;
        if self.msg_log.capacity() == 0 {
            // Every broadcast appends n − 1 entries.
            self.msg_log.reserve(16 * self.n);
        }
    }

    pub(crate) fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Takes the payload of a popped tag out of its slab.
    pub(crate) fn resolve(&mut self, tag: EvTag) -> EventKind<A> {
        match tag.kind {
            EvSlot::Invoke => EventKind::Invoke {
                op: self.ops.take(tag.slot),
            },
            EvSlot::Deliver => {
                let p = self.msgs.take(tag.slot);
                EventKind::Deliver {
                    from: p.from,
                    msg: p.msg,
                    msg_id: p.id,
                }
            }
            EvSlot::DeliverBatch => {
                let p = self.batches.take(tag.slot);
                EventKind::DeliverBatch {
                    from: p.from,
                    first_id: p.first_id,
                    msgs: p.msgs,
                }
            }
            EvSlot::Timer => {
                let (id, timer) = self.timer_payloads.take(tag.slot);
                EventKind::Timer { id, timer }
            }
        }
    }

    /// Payloads currently live across all four event arenas. Every pop
    /// takes its payload out of the owning slab (stale timers included),
    /// so this must be zero whenever the event queue is empty — the
    /// end-of-run leak check the engine asserts and reports.
    pub(crate) fn live_payloads(&self) -> usize {
        self.ops.live_count()
            + self.msgs.live_count()
            + self.batches.live_count()
            + self.timer_payloads.live_count()
    }

    pub(crate) fn push_invoke(&mut self, pid: ProcessId, at: SimTime, op: A::Op) {
        let slot = self.ops.insert(op);
        let seq = self.bump_seq();
        self.queue.push(
            at,
            seq,
            EvTag {
                pid,
                kind: EvSlot::Invoke,
                slot,
            },
        );
    }
}

impl<A: Actor, D: DelayModel> Transport<A> for VirtualTransport<A, D> {
    fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: A::Msg,
    ) -> Result<MsgId, TransportError> {
        let pair_seq = self.pair_seq.next(from, to);
        let meta = MsgMeta {
            from,
            to,
            sent_at: self.now,
            pair_seq,
        };
        let delay = self.delays.delay(meta);
        // The bounds themselves are validated once at construction
        // (`DelayBounds::try_new` rejects u > d and d = 0); per-send
        // containment is checked in release builds too — an
        // inadmissible delay would silently void every bound the run
        // is supposed to witness, so it must never reach the queue.
        assert!(
            self.bounds.contains(delay),
            "delay model produced inadmissible delay {delay:?} for {from}->{to} \
             (bounds [{:?}, {:?}])",
            self.bounds.min(),
            self.bounds.max()
        );
        let recv_at = self.now + delay;
        let id = MsgId::new(self.next_msg_id);
        self.next_msg_id += 1;
        if self.log_messages {
            self.msg_log.push(MsgEvent {
                id,
                from,
                to,
                sent_at: self.now,
                delay,
                recv_at,
            });
        }
        let slot = self.msgs.insert(MsgPayload { from, id, msg });
        let seq = self.bump_seq();
        self.queue.push(
            recv_at,
            seq,
            EvTag {
                pid: to,
                kind: EvSlot::Deliver,
                slot,
            },
        );
        Ok(id)
    }

    fn send_batch(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msgs: Vec<A::Msg>,
    ) -> Result<MsgId, TransportError> {
        assert!(!msgs.is_empty(), "empty delivery batch {from}->{to}");
        // One pair-seq tick and one delay draw for the whole batch: the
        // batch is one wire-level message as far as the delay model is
        // concerned.
        let pair_seq = self.pair_seq.next(from, to);
        let meta = MsgMeta {
            from,
            to,
            sent_at: self.now,
            pair_seq,
        };
        let delay = self.delays.delay(meta);
        assert!(
            self.bounds.contains(delay),
            "delay model produced inadmissible delay {delay:?} for {from}->{to} \
             (bounds [{:?}, {:?}])",
            self.bounds.min(),
            self.bounds.max()
        );
        let recv_at = self.now + delay;
        let first_id = MsgId::new(self.next_msg_id);
        self.next_msg_id += msgs.len() as u64;
        if self.log_messages {
            // The log stays per-message (checkers pair ids one-to-one);
            // all entries of a batch share the send/recv instants.
            for i in 0..msgs.len() {
                self.msg_log.push(MsgEvent {
                    id: MsgId::new(first_id.as_u64() + i as u64),
                    from,
                    to,
                    sent_at: self.now,
                    delay,
                    recv_at,
                });
            }
        }
        let slot = self.batches.insert(BatchPayload {
            from,
            first_id,
            msgs,
        });
        let seq = self.bump_seq();
        self.queue.push(
            recv_at,
            seq,
            EvTag {
                pid: to,
                kind: EvSlot::DeliverBatch,
                slot,
            },
        );
        Ok(first_id)
    }

    fn set_timer(&mut self, pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer) {
        // Timer delays are in clock units; under drift (a non-unit
        // clock rate) convert to real time.
        let real_delay = self.clocks.clock_to_real(pid, delay);
        let slot = self.timer_payloads.insert((id, timer));
        let seq = self.bump_seq();
        self.queue.push(
            self.now + real_delay,
            seq,
            EvTag {
                pid,
                kind: EvSlot::Timer,
                slot,
            },
        );
    }
}

/// The real-thread runtime's wire format to its router thread.
pub(crate) enum RouterMsg<M> {
    /// Deliver `msg` to `to` when the wall clock reaches `deliver_at`.
    Send {
        from: ProcessId,
        to: ProcessId,
        id: MsgId,
        msg: M,
        deliver_at: Instant,
    },
    /// Deliver a whole batch to `to` in one inbox push when the wall
    /// clock reaches `deliver_at`. The messages hold the consecutive ids
    /// `first_id..first_id + msgs.len()`.
    SendBatch {
        from: ProcessId,
        to: ProcessId,
        first_id: MsgId,
        msgs: Vec<M>,
        deliver_at: Instant,
    },
    /// Stop the router.
    Shutdown,
}

/// A timer armed by a real-thread worker's node, waiting for its
/// wall-clock deadline.
pub(crate) struct PendingTimer<T> {
    pub(crate) fire_at: Instant,
    pub(crate) id: TimerId,
    pub(crate) timer: T,
}

/// The real-thread runtime's [`Transport`]: sends go to the
/// delay-injecting router thread with a seeded random delay within the
/// cluster bounds; timers wait in the worker's own pending list (the
/// worker sleeps until the earliest deadline). Cancels prune the
/// pending list eagerly so shutdown never waits on a cancelled timer.
pub(crate) struct ChannelTransport<A: Actor> {
    pub(crate) router_tx: Sender<RouterMsg<A::Msg>>,
    pub(crate) rng: StdRng,
    pub(crate) bounds: DelayBounds,
    /// Global send-order message id allocator, shared with every other
    /// worker so trace `send`/`deliver` events pair by id cluster-wide.
    pub(crate) msg_ids: Arc<AtomicU64>,
    pub(crate) pending: Vec<PendingTimer<A::Timer>>,
}

impl<A: Actor> ChannelTransport<A> {
    /// Pops the due pending timer with the earliest `(deadline, id)`,
    /// if any.
    pub(crate) fn pop_due(&mut self) -> Option<PendingTimer<A::Timer>> {
        let now = Instant::now();
        let due = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, t)| t.fire_at <= now)
            .min_by_key(|(_, t)| (t.fire_at, t.id))
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(due))
    }

    /// The earliest pending deadline, if any timers are armed.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|t| t.fire_at).min()
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

impl<A: Actor> Transport<A> for ChannelTransport<A> {
    fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: A::Msg,
    ) -> Result<MsgId, TransportError> {
        let ticks = self
            .rng
            .gen_range(self.bounds.min().as_ticks()..=self.bounds.max().as_ticks());
        let deliver_at = Instant::now() + ticks_to_duration(SimDuration::from_ticks(ticks));
        let id = MsgId::new(self.msg_ids.fetch_add(1, Ordering::Relaxed));
        // A closed router means shutdown is in progress; that is not an
        // error (the cluster is draining), so this path stays infallible.
        let _ = self.router_tx.send(RouterMsg::Send {
            from,
            to,
            id,
            msg,
            deliver_at,
        });
        Ok(id)
    }

    fn send_batch(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msgs: Vec<A::Msg>,
    ) -> Result<MsgId, TransportError> {
        assert!(!msgs.is_empty(), "empty delivery batch {from}->{to}");
        let ticks = self
            .rng
            .gen_range(self.bounds.min().as_ticks()..=self.bounds.max().as_ticks());
        let deliver_at = Instant::now() + ticks_to_duration(SimDuration::from_ticks(ticks));
        let first_id = MsgId::new(self.msg_ids.fetch_add(msgs.len() as u64, Ordering::Relaxed));
        // A closed router means shutdown is in progress.
        let _ = self.router_tx.send(RouterMsg::SendBatch {
            from,
            to,
            first_id,
            msgs,
            deliver_at,
        });
        Ok(first_id)
    }

    fn set_timer(&mut self, _pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer) {
        self.pending.push(PendingTimer {
            fire_at: Instant::now() + ticks_to_duration(delay),
            id,
            timer,
        });
    }

    fn cancel_timer(&mut self, _pid: ProcessId, id: TimerId) {
        self.pending.retain(|t| t.id != id);
    }
}

/// A worker thread's inbox message in the real-thread runtime.
pub(crate) enum Input<A: Actor> {
    /// Invoke an operation already recorded in the history as `OpId`.
    Invoke(OpId, A::Op),
    /// Deliver a message from another process.
    Deliver(ProcessId, MsgId, A::Msg),
    /// Deliver a batch from another process: `(from, first_id, msgs)`.
    DeliverBatch(ProcessId, MsgId, Vec<A::Msg>),
    /// Drain pending timers, then exit.
    Shutdown,
}

/// A heap entry's cargo: one message or one batch.
enum Wire<M> {
    One(M),
    Batch(Vec<M>),
}

/// One in-flight message (or batch) inside the router's delivery heap.
struct HeapEntry<M> {
    deliver_at: Instant,
    seq: u64,
    to: ProcessId,
    from: ProcessId,
    id: MsgId,
    wire: Wire<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// After a shutdown request, how long the router lingers with an empty
/// heap waiting for follow-up sends. Workers are still running at that
/// point, and a delivery the router forwards can cause a worker to send
/// again (e.g. a token making its way around a ring); any such send
/// re-arms the drain. Only a full grace window with nothing in flight
/// ends it.
const DRAIN_GRACE: Duration = Duration::from_millis(40);

/// The delay-injecting router: receives [`RouterMsg::Send`]s from every
/// [`ChannelTransport`], holds each message until its wall-clock
/// `deliver_at`, then forwards it to the destination worker's inbox in
/// deterministic `(deliver_at, seq)` order. Runs on its own thread
/// until shutdown or until all senders hang up.
///
/// Shutdown *drains*: after [`RouterMsg::Shutdown`] (or after every
/// sender hangs up) the router keeps holding and forwarding everything
/// already accepted — plus any follow-up sends workers make in response
/// — and only exits once the heap has been empty for a full
/// [`DRAIN_GRACE`] with no new sends arriving. Breaking out immediately
/// would silently drop in-flight messages and batches on cluster
/// teardown.
pub(crate) fn run_router<A: Actor>(
    router_rx: &Receiver<RouterMsg<A::Msg>>,
    proc_txs: &[SyncSender<Input<A>>],
) {
    let mut heap: BinaryHeap<HeapEntry<A::Msg>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut draining = false;
    loop {
        let timeout = match heap.peek() {
            Some(e) => e.deliver_at.saturating_duration_since(Instant::now()),
            None if draining => DRAIN_GRACE,
            None => Duration::from_secs(3600),
        };
        match router_rx.recv_timeout(timeout) {
            Ok(RouterMsg::Send {
                from,
                to,
                id,
                msg,
                deliver_at,
            }) => {
                heap.push(HeapEntry {
                    deliver_at,
                    seq,
                    to,
                    from,
                    id,
                    wire: Wire::One(msg),
                });
                seq += 1;
            }
            Ok(RouterMsg::SendBatch {
                from,
                to,
                first_id,
                msgs,
                deliver_at,
            }) => {
                heap.push(HeapEntry {
                    deliver_at,
                    seq,
                    to,
                    from,
                    id: first_id,
                    wire: Wire::Batch(msgs),
                });
                seq += 1;
            }
            Ok(RouterMsg::Shutdown) => draining = true,
            Err(RecvTimeoutError::Timeout) if draining && heap.is_empty() => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // No sender can ever enqueue again; deliver the backlog
                // synchronously (sleeping to each deadline) and exit.
                while let Some(e) = heap.pop() {
                    let wait = e.deliver_at.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    let _ = proc_txs[e.to.index()].send(match e.wire {
                        Wire::One(msg) => Input::Deliver(e.from, e.id, msg),
                        Wire::Batch(msgs) => Input::DeliverBatch(e.from, e.id, msgs),
                    });
                }
                break;
            }
        }
        while let Some(e) = heap.peek() {
            if e.deliver_at > Instant::now() {
                break;
            }
            let e = heap.pop().expect("peeked");
            // A closed worker means shutdown is in progress.
            let _ = proc_txs[e.to.index()].send(match e.wire {
                Wire::One(msg) => Input::Deliver(e.from, e.id, msg),
                Wire::Batch(msgs) => Input::DeliverBatch(e.from, e.id, msgs),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Drives a seeded interleaved stream of ordered pairs through both
    /// `PairSeq` representations and asserts the counter sequences are
    /// identical draw-for-draw.
    fn assert_pair_seq_parity(n: usize, draws: usize, seed: u64) {
        let mut dense = PairSeq::Dense {
            counts: vec![0; n * n],
            n,
        };
        let mut sparse = PairSeq::Sparse(FxHashMap::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..draws {
            let from = ProcessId::new(rng.gen_range(0..n as u32));
            let to = ProcessId::new(rng.gen_range(0..n as u32));
            assert_eq!(
                dense.next(from, to),
                sparse.next(from, to),
                "pair ({from}, {to}) diverged (n = {n})"
            );
        }
    }

    #[test]
    fn pair_seq_parity_small_n() {
        assert_pair_seq_parity(8, 4_000, 11);
    }

    #[test]
    fn pair_seq_parity_at_dense_boundary() {
        // Exactly at the dense limit the constructor still picks Dense…
        assert!(matches!(
            PairSeq::new(DENSE_PAIR_LIMIT),
            PairSeq::Dense { .. }
        ));
        assert_pair_seq_parity(DENSE_PAIR_LIMIT, 2_000, 22);
    }

    #[test]
    fn pair_seq_parity_past_dense_boundary() {
        // …and one past it, Sparse. The counter sequences must agree on
        // both sides of the switch.
        assert!(matches!(
            PairSeq::new(DENSE_PAIR_LIMIT + 1),
            PairSeq::Sparse(_)
        ));
        assert_pair_seq_parity(DENSE_PAIR_LIMIT + 1, 2_000, 33);
    }

    #[test]
    fn pair_seq_post_increments_per_ordered_pair() {
        let mut seq = PairSeq::new(4);
        let (a, b) = (ProcessId::new(0), ProcessId::new(1));
        assert_eq!(seq.next(a, b), 0);
        assert_eq!(seq.next(a, b), 1);
        // The reverse direction is a different ordered pair.
        assert_eq!(seq.next(b, a), 0);
    }
}
