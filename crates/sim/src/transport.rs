//! The pluggable transport layer: deliver-at-time semantics for
//! messages and timers.
//!
//! Both runtimes execute the same [`Actor`] state
//! machines through the same [`NodeCore`](crate::node::NodeCore); what
//! differs is *when and how* an enqueued message or timer expiry comes
//! back to a node. A [`Transport`] captures exactly that difference:
//!
//! * the discrete-event engine implements it with a virtual-time
//!   `BinaryHeap` — a send is assigned a delay by the
//!   [`DelayModel`] and popped back at
//!   `sent_at + delay` in deterministic `(time, seq)` order;
//! * the real-thread runtime implements it with a delay-injecting
//!   router thread plus per-worker mpsc channels — a send is assigned a
//!   seeded random delay within the same `[d − u, d]` bounds and
//!   delivered when the wall clock reaches `sent_at + delay`.
//!
//! Every message and timer a node produces passes through this single
//! choke point, which is what makes delay injection, trace pairing and
//! future drop/duplicate fault hooks land once for both backends.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;

use crate::actor::Actor;
use crate::clock::ClockAssignment;
use crate::delay::{DelayBounds, DelayModel, MsgMeta};
use crate::engine::{EventKind, MsgEvent, Scheduled};
use crate::ids::{MsgId, OpId, ProcessId, TimerId};
use crate::time::{ticks_to_duration, SimDuration, SimTime};

/// A backend that schedules message deliveries and timer expiries.
///
/// Implementations decide the *delivery time* of each message (the
/// delay model of the run) and own the queue/heap/channel machinery
/// that eventually hands the event back to the destination node. The
/// [`NodeCore`](crate::node::NodeCore) calls these methods while
/// draining one activation's effects; it never schedules anything
/// behind the transport's back.
pub trait Transport<A: Actor> {
    /// Assigns a delay to `msg` and enqueues its delivery at `to`
    /// (deliver-at-time semantics). Returns the run-unique message id,
    /// allocated in global send order so every `send` trace event pairs
    /// with exactly one later `deliver` carrying the same id.
    fn send(&mut self, from: ProcessId, to: ProcessId, msg: A::Msg) -> MsgId;

    /// Enqueues the expiry of timer `id` at `pid`, `delay` *local
    /// clock* ticks from now. The id is already live in the node's
    /// [`TimerSlab`](crate::timers::TimerSlab); the transport only
    /// schedules the expiry event (converting clock to real time if the
    /// backend models clock drift).
    fn set_timer(&mut self, pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer);

    /// Informs the backend that a previously scheduled timer was
    /// cancelled, so eager backends can prune its expiry from their
    /// schedule. The node has already retired the id in its slab, so a
    /// backend may also ignore this and drop the stale expiry when it
    /// comes due (the engine does; the real-thread runtime prunes so
    /// shutdown never waits on cancelled timers).
    fn cancel_timer(&mut self, pid: ProcessId, id: TimerId) {
        let _ = (pid, id);
    }
}

/// The engine's [`Transport`]: a virtual-time event heap.
///
/// A send is assigned a delay by the [`DelayModel`] (re-validated
/// against the bounds on every call), logged, and queued for delivery
/// at `sent_at + delay`; a timer arm is converted from local clock
/// ticks to real time under the [`ClockAssignment`] and queued at its
/// expiry instant. Events pop back in deterministic `(time, seq)`
/// order. Cancelled timers are *not* pruned from the heap — the node
/// core's slab generation filters the stale expiry when it pops.
pub(crate) struct VirtualTransport<A: Actor, D: DelayModel> {
    pub(crate) clocks: ClockAssignment,
    pub(crate) delays: D,
    pub(crate) queue: BinaryHeap<Scheduled<A>>,
    pub(crate) seq: u64,
    pub(crate) now: SimTime,
    /// Per ordered pair `(from, to)` send counters, flattened to
    /// `from * n + to` (grids run millions of short simulations; a flat
    /// vector beats a hash map in the send hot path).
    pub(crate) pair_seq: Vec<u64>,
    pub(crate) n: usize,
    pub(crate) next_msg_id: u64,
    pub(crate) msg_log: Vec<MsgEvent>,
}

impl<A: Actor, D: DelayModel> VirtualTransport<A, D> {
    pub(crate) fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    pub(crate) fn push_invoke(&mut self, pid: ProcessId, at: SimTime, op: A::Op) {
        let seq = self.bump_seq();
        self.queue.push(Scheduled {
            at,
            seq,
            pid,
            kind: EventKind::Invoke { op },
        });
    }
}

impl<A: Actor, D: DelayModel> Transport<A> for VirtualTransport<A, D> {
    fn send(&mut self, from: ProcessId, to: ProcessId, msg: A::Msg) -> MsgId {
        let pair_seq = &mut self.pair_seq[from.index() * self.n + to.index()];
        let this_seq = *pair_seq;
        *pair_seq += 1;
        let meta = MsgMeta {
            from,
            to,
            sent_at: self.now,
            pair_seq: this_seq,
        };
        let delay = self.delays.delay(meta);
        let bounds = self.delays.bounds();
        assert!(
            bounds.contains(delay),
            "delay model produced inadmissible delay {delay:?} for {from}->{to} \
             (bounds [{:?}, {:?}])",
            bounds.min(),
            bounds.max()
        );
        let recv_at = self.now + delay;
        let id = MsgId::new(self.next_msg_id);
        self.next_msg_id += 1;
        self.msg_log.push(MsgEvent {
            id,
            from,
            to,
            sent_at: self.now,
            delay,
            recv_at,
        });
        let seq = self.bump_seq();
        self.queue.push(Scheduled {
            at: recv_at,
            seq,
            pid: to,
            kind: EventKind::Deliver {
                from,
                msg,
                msg_id: id,
            },
        });
        id
    }

    fn set_timer(&mut self, pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer) {
        let seq = self.bump_seq();
        // Timer delays are in clock units; under drift (a non-unit
        // clock rate) convert to real time.
        let real_delay = self.clocks.clock_to_real(pid, delay);
        self.queue.push(Scheduled {
            at: self.now + real_delay,
            seq,
            pid,
            kind: EventKind::Timer { id, timer },
        });
    }
}

/// The real-thread runtime's wire format to its router thread.
pub(crate) enum RouterMsg<M> {
    /// Deliver `msg` to `to` when the wall clock reaches `deliver_at`.
    Send {
        from: ProcessId,
        to: ProcessId,
        id: MsgId,
        msg: M,
        deliver_at: Instant,
    },
    /// Stop the router.
    Shutdown,
}

/// A timer armed by a real-thread worker's node, waiting for its
/// wall-clock deadline.
pub(crate) struct PendingTimer<T> {
    pub(crate) fire_at: Instant,
    pub(crate) id: TimerId,
    pub(crate) timer: T,
}

/// The real-thread runtime's [`Transport`]: sends go to the
/// delay-injecting router thread with a seeded random delay within the
/// cluster bounds; timers wait in the worker's own pending list (the
/// worker sleeps until the earliest deadline). Cancels prune the
/// pending list eagerly so shutdown never waits on a cancelled timer.
pub(crate) struct ChannelTransport<A: Actor> {
    pub(crate) router_tx: Sender<RouterMsg<A::Msg>>,
    pub(crate) rng: StdRng,
    pub(crate) bounds: DelayBounds,
    /// Global send-order message id allocator, shared with every other
    /// worker so trace `send`/`deliver` events pair by id cluster-wide.
    pub(crate) msg_ids: Arc<AtomicU64>,
    pub(crate) pending: Vec<PendingTimer<A::Timer>>,
}

impl<A: Actor> ChannelTransport<A> {
    /// Pops the due pending timer with the earliest `(deadline, id)`,
    /// if any.
    pub(crate) fn pop_due(&mut self) -> Option<PendingTimer<A::Timer>> {
        let now = Instant::now();
        let due = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, t)| t.fire_at <= now)
            .min_by_key(|(_, t)| (t.fire_at, t.id))
            .map(|(i, _)| i)?;
        Some(self.pending.swap_remove(due))
    }

    /// The earliest pending deadline, if any timers are armed.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|t| t.fire_at).min()
    }

    pub(crate) fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

impl<A: Actor> Transport<A> for ChannelTransport<A> {
    fn send(&mut self, from: ProcessId, to: ProcessId, msg: A::Msg) -> MsgId {
        let ticks = self
            .rng
            .gen_range(self.bounds.min().as_ticks()..=self.bounds.max().as_ticks());
        let deliver_at = Instant::now() + ticks_to_duration(SimDuration::from_ticks(ticks));
        let id = MsgId::new(self.msg_ids.fetch_add(1, Ordering::Relaxed));
        // A closed router means shutdown is in progress.
        let _ = self.router_tx.send(RouterMsg::Send {
            from,
            to,
            id,
            msg,
            deliver_at,
        });
        id
    }

    fn set_timer(&mut self, _pid: ProcessId, id: TimerId, delay: SimDuration, timer: A::Timer) {
        self.pending.push(PendingTimer {
            fire_at: Instant::now() + ticks_to_duration(delay),
            id,
            timer,
        });
    }

    fn cancel_timer(&mut self, _pid: ProcessId, id: TimerId) {
        self.pending.retain(|t| t.id != id);
    }
}

/// A worker thread's inbox message in the real-thread runtime.
pub(crate) enum Input<A: Actor> {
    /// Invoke an operation already recorded in the history as `OpId`.
    Invoke(OpId, A::Op),
    /// Deliver a message from another process.
    Deliver(ProcessId, MsgId, A::Msg),
    /// Drain pending timers, then exit.
    Shutdown,
}

/// One in-flight message inside the router's delivery heap.
struct HeapEntry<M> {
    deliver_at: Instant,
    seq: u64,
    to: ProcessId,
    from: ProcessId,
    id: MsgId,
    msg: M,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// The delay-injecting router: receives [`RouterMsg::Send`]s from every
/// [`ChannelTransport`], holds each message until its wall-clock
/// `deliver_at`, then forwards it to the destination worker's inbox in
/// deterministic `(deliver_at, seq)` order. Runs on its own thread
/// until shutdown or until all senders hang up.
pub(crate) fn run_router<A: Actor>(
    router_rx: &Receiver<RouterMsg<A::Msg>>,
    proc_txs: &[SyncSender<Input<A>>],
) {
    let mut heap: BinaryHeap<HeapEntry<A::Msg>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        let timeout = heap
            .peek()
            .map(|e| e.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        match router_rx.recv_timeout(timeout) {
            Ok(RouterMsg::Send {
                from,
                to,
                id,
                msg,
                deliver_at,
            }) => {
                heap.push(HeapEntry {
                    deliver_at,
                    seq,
                    to,
                    from,
                    id,
                    msg,
                });
                seq += 1;
            }
            Ok(RouterMsg::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        while let Some(e) = heap.peek() {
            if e.deliver_at > Instant::now() {
                break;
            }
            let e = heap.pop().expect("peeked");
            // A closed worker means shutdown is in progress.
            let _ = proc_txs[e.to.index()].send(Input::Deliver(e.from, e.id, e.msg));
        }
    }
}
