//! The runtime-agnostic node core shared by both runtimes.
//!
//! Chapter III's model is one actor state machine per process; this
//! module is the one place that executes it. A [`NodeCore`] owns the
//! per-process runtime state — the actor, its [`TimerSlab`] and the
//! at-most-one-pending-operation bookkeeping — and, for every
//! activation (invoke, message delivery, timer expiry, start-of-run),
//! performs in a fixed order:
//!
//! 1. invariant enforcement (one pending operation per process, stale
//!    timer filtering via slab generations);
//! 2. structured trace emission ([`TraceEventKind`]) stamped with the
//!    activation's real time and local clock reading;
//! 3. the actor handler itself, through a [`Context`];
//! 4. draining the resulting effects: sends and timers go to the
//!    pluggable [`Transport`], cancels retire slab generations,
//!    responses are committed to the [`History`].
//!
//! The discrete-event engine ([`crate::engine`]) wraps a `NodeCore` per
//! process around a virtual-time heap transport; the real-thread
//! runtime ([`crate::rt`]) wraps one around a router-and-channels
//! transport. Neither re-implements any of the four steps above, so
//! the two backends cannot drift in effect application, invariants,
//! timer lifecycle or trace schema.

use core::fmt;

use crate::actor::{Actor, Context, Effects};
use crate::history::History;
use crate::ids::{MsgId, OpId, ProcessId, TimerId};
use crate::time::{ClockTime, SimTime};
use crate::timers::TimerSlab;
use crate::trace::{TraceEvent, TraceEventKind};
use crate::transport::{Transport, TransportError};

/// The time stamp of one activation: the real time at which it happens
/// and the local clock reading of the process at that instant.
///
/// The engine computes it from virtual time and the
/// [`ClockAssignment`](crate::clock::ClockAssignment); the real-thread
/// runtime from the wall clock and the worker's offset. Local
/// processing takes zero time, so every effect of one activation
/// carries the same stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    /// Real time of the activation.
    pub now: SimTime,
    /// The process's local clock reading at `now`.
    pub clock: ClockTime,
}

/// What one activation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// The event was stale (a timer expiry whose generation was retired
    /// by a cancel) — no handler ran, no effects were applied.
    Stale,
    /// The handler ran; no operation completed.
    Ran,
    /// The handler ran and completed the process's pending operation.
    /// The response is already committed to the history under this id.
    Completed(OpId),
}

/// A consumer of the structured trace events a node emits.
///
/// The two runtimes store their sinks differently (the engine holds an
/// optional recorder plus an optional boxed sink; the real-thread
/// runtime a mutex-shared sink); this small trait lets [`NodeCore`]
/// emit through either without caring. `active` gates payload
/// rendering: when it returns `false` the node builds no event (and no
/// `Debug` strings), keeping the disabled path allocation-free.
pub trait TraceOutput {
    /// `true` when some consumer is attached and events should be built.
    fn active(&self) -> bool;

    /// Receives one stamped event. Only called when [`TraceOutput::active`]
    /// returned `true` in the same activation.
    fn emit(&mut self, event: TraceEvent);
}

/// A trace output with nothing attached; `active` is always `false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceOutput for NoTrace {
    fn active(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: TraceEvent) {}
}

/// Where a node commits history records.
///
/// The engine owns its [`History`] directly; the real-thread runtime
/// shares one behind an `Arc<Mutex<_>>` and locks per record. Both
/// paths go through this trait so invocation and response recording —
/// and the invariants `History` asserts — live in [`NodeCore`] only.
pub trait HistorySink<A: Actor> {
    /// Appends an invocation and returns its id.
    fn record_invoke(&mut self, pid: ProcessId, op: A::Op, at: SimTime) -> OpId;

    /// Records the response of operation `id`.
    fn record_response(&mut self, id: OpId, resp: A::Resp, at: SimTime);
}

impl<A: Actor> HistorySink<A> for History<A::Op, A::Resp> {
    fn record_invoke(&mut self, pid: ProcessId, op: A::Op, at: SimTime) -> OpId {
        History::record_invoke(self, pid, op, at)
    }

    fn record_response(&mut self, id: OpId, resp: A::Resp, at: SimTime) {
        History::record_response(self, id, resp, at);
    }
}

/// One process of the system: the actor plus the per-process runtime
/// state both backends need.
///
/// See the [module docs](self) for the activation pipeline. A
/// `NodeCore` is driven by a scheduler (virtual-time or real-thread)
/// that decides *when* each activation happens; the core decides *what*
/// an activation does.
pub struct NodeCore<A: Actor> {
    pid: ProcessId,
    n: usize,
    actor: A,
    /// Timer liveness: generation-stamped ids, O(1) integer compares
    /// (see [`crate::timers`]). One slab per node — ids are only ever
    /// cancelled by the process that set them.
    timers: TimerSlab,
    /// The at-most-one-pending-operation invariant of Chapter III §A.
    pending_op: Option<OpId>,
    /// Reused effect buffer: every activation borrows it, fills it and
    /// hands it back drained, so steady-state activations allocate
    /// nothing for their effects.
    scratch: Effects<A>,
}

impl<A: Actor> fmt::Debug for NodeCore<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCore")
            .field("pid", &self.pid)
            .field("pending_op", &self.pending_op)
            .field("pending_timers", &self.timers.pending())
            .finish_non_exhaustive()
    }
}

impl<A: Actor> NodeCore<A> {
    /// Wraps `actor` as process `pid` of an `n`-process system.
    #[must_use]
    pub fn new(pid: ProcessId, n: usize, actor: A) -> Self {
        NodeCore {
            pid,
            n,
            actor,
            timers: TimerSlab::with_capacity(2),
            pending_op: None,
            scratch: Effects::new(),
        }
    }

    /// This node's process id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Immutable access to the actor state.
    #[must_use]
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Consumes the node, returning the actor state.
    #[must_use]
    pub fn into_actor(self) -> A {
        self.actor
    }

    /// The node's timer slab — schedulers use this to filter stale
    /// expiry events without retiring live ids.
    #[must_use]
    pub fn timers(&self) -> &TimerSlab {
        &self.timers
    }

    /// The pending operation, if one is in flight at this process.
    #[must_use]
    pub fn pending_op(&self) -> Option<OpId> {
        self.pending_op
    }

    /// Runs the start-of-run hook ([`Actor::on_start`]).
    pub fn on_start<T, TO, H>(
        &mut self,
        stamp: Stamp,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        let effects = self.run(stamp.clock, |actor, ctx| actor.on_start(ctx));
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    /// Runs an operation invocation, recording it in the history.
    ///
    /// This is the engine path, where the invocation is recorded at the
    /// instant the scheduler dispatches it. The real-thread runtime
    /// records invocations at the client call site (to capture the real
    /// invocation time, not the worker dequeue time) and uses
    /// [`NodeCore::on_invoke_recorded`] instead.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already pending at this process.
    pub fn on_invoke<T, TO, H>(
        &mut self,
        stamp: Stamp,
        op: A::Op,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        self.assert_no_pending();
        if trace.active() {
            self.emit(
                trace,
                stamp,
                TraceEventKind::Invoke {
                    op: format!("{op:?}"),
                },
            );
        }
        let op_id = history.record_invoke(self.pid, op.clone(), stamp.now);
        self.pending_op = Some(op_id);
        let effects = self.run(stamp.clock, |actor, ctx| actor.on_invoke(op, ctx));
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    /// Runs an operation invocation that was already recorded in the
    /// history as `op_id` (the real-thread client path).
    ///
    /// # Panics
    ///
    /// Panics if an operation is already pending at this process.
    pub fn on_invoke_recorded<T, TO, H>(
        &mut self,
        stamp: Stamp,
        op_id: OpId,
        op: A::Op,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        self.assert_no_pending();
        if trace.active() {
            self.emit(
                trace,
                stamp,
                TraceEventKind::Invoke {
                    op: format!("{op:?}"),
                },
            );
        }
        self.pending_op = Some(op_id);
        let effects = self.run(stamp.clock, |actor, ctx| actor.on_invoke(op, ctx));
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    /// Delivers message `msg_id` from `from`.
    #[allow(clippy::too_many_arguments)] // one parameter per activation ingredient
    pub fn on_message<T, TO, H>(
        &mut self,
        stamp: Stamp,
        from: ProcessId,
        msg_id: MsgId,
        msg: A::Msg,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        if trace.active() {
            self.emit(trace, stamp, TraceEventKind::Recv { from, msg: msg_id });
        }
        let effects = self.run(stamp.clock, |actor, ctx| actor.on_message(from, msg, ctx));
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    /// Delivers a batch of messages from `from` as one activation. The
    /// messages carry the consecutive ids `first_id..first_id + k`;
    /// one `Recv` trace event is emitted per message so per-message
    /// send/deliver pairing survives batching.
    #[allow(clippy::too_many_arguments)] // one parameter per activation ingredient
    pub fn on_message_batch<T, TO, H>(
        &mut self,
        stamp: Stamp,
        from: ProcessId,
        first_id: MsgId,
        msgs: Vec<A::Msg>,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        if trace.active() {
            for i in 0..msgs.len() {
                self.emit(
                    trace,
                    stamp,
                    TraceEventKind::Recv {
                        from,
                        msg: MsgId::new(first_id.as_u64() + i as u64),
                    },
                );
            }
        }
        let effects = self.run(stamp.clock, |actor, ctx| {
            actor.on_message_batch(from, msgs, ctx);
        });
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    /// Fires timer `id`, or returns [`Activation::Stale`] without
    /// running anything if the id's generation was retired by a cancel
    /// after the expiry event was queued.
    pub fn on_timer<T, TO, H>(
        &mut self,
        stamp: Stamp,
        id: TimerId,
        timer: A::Timer,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        if !self.timers.fire(id) {
            return Ok(Activation::Stale);
        }
        if trace.active() {
            self.emit(
                trace,
                stamp,
                TraceEventKind::Timer {
                    id,
                    tag: format!("{timer:?}"),
                },
            );
        }
        let effects = self.run(stamp.clock, |actor, ctx| actor.on_timer(timer, ctx));
        self.apply_effects(stamp, effects, transport, trace, history)
    }

    fn assert_no_pending(&self) {
        assert!(
            self.pending_op.is_none(),
            "{}: invocation while another operation is pending \
             (the application layer allows one pending operation per process)",
            self.pid
        );
    }

    fn emit<TO: TraceOutput>(&self, trace: &mut TO, stamp: Stamp, kind: TraceEventKind) {
        trace.emit(TraceEvent {
            at: stamp.now,
            clock: stamp.clock,
            pid: self.pid,
            kind,
        });
    }

    /// Runs one handler against the reusable scratch [`Effects`] buffer
    /// and returns it filled. The caller must hand it back (drained)
    /// via [`NodeCore::apply_effects`], which restores the buffers.
    fn run<F>(&mut self, clock: ClockTime, f: F) -> Effects<A>
    where
        F: FnOnce(&mut A, &mut Context<'_, A>),
    {
        let mut effects = core::mem::take(&mut self.scratch);
        effects.clear();
        {
            let mut ctx = Context::new(self.pid, self.n, clock, &mut self.timers, &mut effects);
            f(&mut self.actor, &mut ctx);
        }
        effects
    }

    /// Drains one activation's effects in the model's fixed order:
    /// sends, timer arms, timer cancels, then the response — then puts
    /// the emptied buffer back as scratch for the next activation.
    ///
    /// On the first transport failure the remaining effects of the
    /// activation are discarded (a partially applied activation cannot
    /// be meaningfully resumed) and the error propagates to the
    /// scheduler. In-process transports never fail, so both in-process
    /// backends take the infallible path bit-for-bit.
    fn apply_effects<T, TO, H>(
        &mut self,
        stamp: Stamp,
        mut effects: Effects<A>,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        let out = self.drain_effects(stamp, &mut effects, transport, trace, history);
        // On success every buffer is already drained; on failure this
        // discards whatever the early return left behind. Either way the
        // buffer goes back as scratch.
        effects.clear();
        self.scratch = effects;
        out
    }

    fn drain_effects<T, TO, H>(
        &mut self,
        stamp: Stamp,
        effects: &mut Effects<A>,
        transport: &mut T,
        trace: &mut TO,
        history: &mut H,
    ) -> Result<Activation, TransportError>
    where
        T: Transport<A>,
        TO: TraceOutput,
        H: HistorySink<A>,
    {
        for (to, msg) in effects.sends.drain(..) {
            if trace.active() {
                let payload = format!("{msg:?}");
                let id = transport.send(self.pid, to, msg)?;
                self.emit(
                    trace,
                    stamp,
                    TraceEventKind::Send {
                        to,
                        msg: id,
                        payload,
                    },
                );
            } else {
                transport.send(self.pid, to, msg)?;
            }
        }

        for (to, msgs) in effects.batches.drain(..) {
            if trace.active() {
                // One Send trace event per message; ids are consecutive
                // from the batch's first id.
                let payloads: Vec<String> = msgs.iter().map(|m| format!("{m:?}")).collect();
                let first = transport.send_batch(self.pid, to, msgs)?;
                for (i, payload) in payloads.into_iter().enumerate() {
                    self.emit(
                        trace,
                        stamp,
                        TraceEventKind::Send {
                            to,
                            msg: MsgId::new(first.as_u64() + i as u64),
                            payload,
                        },
                    );
                }
            } else {
                transport.send_batch(self.pid, to, msgs)?;
            }
        }

        for (id, delay, timer) in effects.timers.drain(..) {
            // The id is already live in the slab (allocated by
            // `Context::set_timer`); the transport only schedules the
            // expiry.
            if trace.active() {
                self.emit(
                    trace,
                    stamp,
                    TraceEventKind::TimerSet {
                        id,
                        tag: format!("{timer:?}"),
                        delay,
                    },
                );
            }
            transport.set_timer(self.pid, id, delay, timer);
        }

        for id in effects.cancels.drain(..) {
            if self.timers.cancel(id) {
                transport.cancel_timer(self.pid, id);
                if trace.active() {
                    self.emit(trace, stamp, TraceEventKind::TimerCancel { id });
                }
            }
        }

        if let Some(resp) = effects.response.take() {
            let op_id = self
                .pending_op
                .take()
                .unwrap_or_else(|| panic!("{}: response with no pending operation", self.pid));
            if trace.active() {
                self.emit(
                    trace,
                    stamp,
                    TraceEventKind::Respond {
                        resp: format!("{resp:?}"),
                    },
                );
            }
            history.record_response(op_id, resp, stamp.now);
            Ok(Activation::Completed(op_id))
        } else {
            Ok(Activation::Ran)
        }
    }
}
