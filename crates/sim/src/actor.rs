//! The process state machine abstraction.
//!
//! Chapter III models each process as a state machine whose transition
//! function consumes `(current state, input event, clock time)` and emits
//! `(new state, output events)`, where input events are operation
//! invocations, message receipts and timer expirations, and output events
//! are at most one operation response plus at most one message per peer and
//! new timer settings.
//!
//! [`Actor`] is that transition function in sans-io form: handlers mutate
//! `self` (the state) and record outputs through a [`Context`]. The same
//! actor therefore runs unchanged under the deterministic discrete-event
//! engine ([`crate::engine`]) and the real-thread runtime ([`crate::rt`]).

use core::fmt;

use crate::ids::{ProcessId, TimerId};
use crate::time::{ClockTime, SimDuration};
use crate::timers::TimerSlab;

/// A process in the message-passing system.
///
/// Handlers must be deterministic functions of the actor state, the input
/// event and the local clock reading — exactly the model in which the
/// thesis's bounds are proved. In particular they must not read wall-clock
/// time or other ambient state.
///
/// Local processing takes zero simulated time, matching the model.
pub trait Actor: Sized {
    /// Messages exchanged between processes.
    type Msg: Clone + fmt::Debug;
    /// Operation invocations from the application layer.
    type Op: Clone + fmt::Debug;
    /// Operation responses to the application layer.
    type Resp: Clone + fmt::Debug;
    /// Timer tags. The thesis attaches `⟨op, arg, ts⟩` plus an action to
    /// each timer; actors encode that here.
    type Timer: Clone + fmt::Debug;

    /// Called once at real time zero, before any other event.
    fn on_start(&mut self, ctx: &mut Context<'_, Self>) {
        let _ = ctx;
    }

    /// The application layer invoked `op` at this process.
    ///
    /// The runtime guarantees at most one operation is pending per process
    /// (the application-layer constraint of Chapter III §A).
    fn on_invoke(&mut self, op: Self::Op, ctx: &mut Context<'_, Self>);

    /// A message from `from` was delivered.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Context<'_, Self>);

    /// A delivery batch from `from` arrived: several messages sent in one
    /// [`Context::send_batch`] call, delivered together after one shared
    /// delay draw.
    ///
    /// The default unrolls the batch through [`Actor::on_message`] in send
    /// order within a single activation, which is behaviorally identical
    /// to `k` back-to-back deliveries at the same instant. Actors that can
    /// amortize per-message work (e.g. arming one hold timer for a whole
    /// mutator batch) override this.
    fn on_message_batch(
        &mut self,
        from: ProcessId,
        msgs: Vec<Self::Msg>,
        ctx: &mut Context<'_, Self>,
    ) {
        for msg in msgs {
            self.on_message(from, msg, ctx);
        }
    }

    /// A timer set earlier via [`Context::set_timer`] went off.
    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Context<'_, Self>);
}

/// Output buffer filled by one handler activation.
#[derive(Debug)]
pub(crate) struct Effects<A: Actor> {
    pub(crate) sends: Vec<(ProcessId, A::Msg)>,
    pub(crate) batches: Vec<(ProcessId, Vec<A::Msg>)>,
    pub(crate) timers: Vec<(TimerId, SimDuration, A::Timer)>,
    pub(crate) cancels: Vec<TimerId>,
    pub(crate) response: Option<A::Resp>,
}

impl<A: Actor> Effects<A> {
    pub(crate) fn new() -> Self {
        Effects {
            sends: Vec::new(),
            batches: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            response: None,
        }
    }

    /// Empties the buffer in place, keeping the allocations — the node
    /// core reuses one `Effects` across activations.
    pub(crate) fn clear(&mut self) {
        self.sends.clear();
        self.batches.clear();
        self.timers.clear();
        self.cancels.clear();
        self.response = None;
    }
}

// Manual impl: `A` itself need not be `Default`.
impl<A: Actor> Default for Effects<A> {
    fn default() -> Self {
        Effects::new()
    }
}

/// Handler-side view of the runtime: local clock, message sends, timers and
/// the operation response.
///
/// A `Context` is only valid for the duration of one handler call; all
/// effects take place after the handler returns, at the same instant of
/// simulated time (local processing is instantaneous).
pub struct Context<'a, A: Actor> {
    pid: ProcessId,
    n: usize,
    clock: ClockTime,
    timer_slab: &'a mut TimerSlab,
    effects: &'a mut Effects<A>,
}

impl<A: Actor> fmt::Debug for Context<'_, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("pid", &self.pid)
            .field("n", &self.n)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl<'a, A: Actor> Context<'a, A> {
    pub(crate) fn new(
        pid: ProcessId,
        n: usize,
        clock: ClockTime,
        timer_slab: &'a mut TimerSlab,
        effects: &'a mut Effects<A>,
    ) -> Self {
        Context {
            pid,
            n,
            clock,
            timer_slab,
            effects,
        }
    }

    /// This process's id.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Total number of processes in the system.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The local clock reading (real time plus this process's offset).
    ///
    /// This is the *only* notion of time a process may observe.
    #[must_use]
    pub fn clock(&self) -> ClockTime {
        self.clock
    }

    /// Sends `msg` to process `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this process (the model has no self-messages;
    /// Algorithm 1 uses a `d − u` self-add timer instead) or out of range.
    pub fn send(&mut self, to: ProcessId, msg: A::Msg) {
        assert!(to != self.pid, "{to}: processes do not send to themselves");
        assert!(to.index() < self.n, "{to} out of range (n = {})", self.n);
        self.effects.sends.push((to, msg));
    }

    /// Sends `msg` to every *other* process (self excluded, per the model).
    pub fn broadcast(&mut self, msg: A::Msg)
    where
        A::Msg: Clone,
    {
        for to in ProcessId::all(self.n) {
            if to != self.pid {
                self.effects.sends.push((to, msg.clone()));
            }
        }
    }

    /// Sends `msgs` to process `to` as one delivery batch: the transport
    /// charges one delay draw for the whole batch and the receiver gets a
    /// single [`Actor::on_message_batch`] activation, with the messages
    /// delivered in order.
    ///
    /// # Panics
    ///
    /// Panics if `to` is this process, out of range, or `msgs` is empty
    /// (an empty batch has no delivery event to schedule).
    pub fn send_batch(&mut self, to: ProcessId, msgs: Vec<A::Msg>) {
        assert!(to != self.pid, "{to}: processes do not send to themselves");
        assert!(to.index() < self.n, "{to} out of range (n = {})", self.n);
        assert!(!msgs.is_empty(), "{}: empty delivery batch", self.pid);
        self.effects.batches.push((to, msgs));
    }

    /// Sends a copy of the batch `msgs` to every *other* process (self
    /// excluded, per the model). Per-destination framing matches
    /// [`Context::send_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `msgs` is empty.
    pub fn broadcast_batch(&mut self, msgs: &[A::Msg])
    where
        A::Msg: Clone,
    {
        assert!(!msgs.is_empty(), "{}: empty delivery batch", self.pid);
        for to in ProcessId::all(self.n) {
            if to != self.pid {
                self.effects.batches.push((to, msgs.to_vec()));
            }
        }
    }

    /// Sets a timer that fires `delay` later (clocks have no drift, so a
    /// clock-time delay equals a real-time delay). Returns an id usable
    /// with [`Context::cancel_timer`].
    ///
    /// A zero delay fires at the current instant, after all effects of the
    /// current handler are applied.
    pub fn set_timer(&mut self, delay: SimDuration, timer: A::Timer) -> TimerId {
        let id = self.timer_slab.alloc();
        self.effects.timers.push((id, delay, timer));
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.cancels.push(id);
    }

    /// Responds to the pending operation at this process.
    ///
    /// # Panics
    ///
    /// Panics if the handler already responded in this activation. The
    /// engine additionally verifies an operation is actually pending.
    pub fn respond(&mut self, resp: A::Resp) {
        assert!(
            self.effects.response.is_none(),
            "{}: handler produced two responses in one step",
            self.pid
        );
        self.effects.response = Some(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Echo;

    impl Actor for Echo {
        type Msg = u32;
        type Op = u32;
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            ctx.respond(op);
        }

        fn on_message(&mut self, _from: ProcessId, _msg: u32, _ctx: &mut Context<'_, Self>) {}

        fn on_timer(&mut self, _timer: (), _ctx: &mut Context<'_, Self>) {}
    }

    fn ctx_harness<F: FnOnce(&mut Context<'_, Echo>)>(f: F) -> Effects<Echo> {
        let mut effects = Effects::new();
        let mut slab = TimerSlab::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                3,
                ClockTime::from_ticks(5),
                &mut slab,
                &mut effects,
            );
            f(&mut ctx);
        }
        effects
    }

    #[test]
    fn broadcast_excludes_self() {
        let effects = ctx_harness(|ctx| ctx.broadcast(7));
        let targets: Vec<_> = effects.sends.iter().map(|(to, _)| to.index()).collect();
        assert_eq!(targets, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "do not send to themselves")]
    fn self_send_rejected() {
        ctx_harness(|ctx| ctx.send(ProcessId::new(0), 1));
    }

    #[test]
    fn timer_ids_are_unique() {
        let effects = ctx_harness(|ctx| {
            let a = ctx.set_timer(SimDuration::from_ticks(1), ());
            let b = ctx.set_timer(SimDuration::from_ticks(2), ());
            assert_ne!(a, b);
        });
        assert_eq!(effects.timers.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two responses")]
    fn double_response_rejected() {
        ctx_harness(|ctx| {
            ctx.respond(1);
            ctx.respond(2);
        });
    }

    #[test]
    fn clock_visible_to_handler() {
        ctx_harness(|ctx| assert_eq!(ctx.clock(), ClockTime::from_ticks(5)));
    }

    #[test]
    fn broadcast_batch_excludes_self_and_keeps_order() {
        let effects = ctx_harness(|ctx| ctx.broadcast_batch(&[7, 8, 9]));
        assert!(effects.sends.is_empty());
        let targets: Vec<_> = effects.batches.iter().map(|(to, _)| to.index()).collect();
        assert_eq!(targets, vec![1, 2]);
        for (_, msgs) in &effects.batches {
            assert_eq!(msgs, &vec![7, 8, 9]);
        }
    }

    #[test]
    #[should_panic(expected = "empty delivery batch")]
    fn empty_batch_rejected() {
        ctx_harness(|ctx| ctx.send_batch(ProcessId::new(1), Vec::new()));
    }

    #[test]
    fn default_batch_handler_unrolls_in_order() {
        #[derive(Debug, Default)]
        struct Collect(Vec<u32>);
        impl Actor for Collect {
            type Msg = u32;
            type Op = u32;
            type Resp = u32;
            type Timer = ();
            fn on_invoke(&mut self, _op: u32, _ctx: &mut Context<'_, Self>) {}
            fn on_message(&mut self, _from: ProcessId, msg: u32, _ctx: &mut Context<'_, Self>) {
                self.0.push(msg);
            }
            fn on_timer(&mut self, _timer: (), _ctx: &mut Context<'_, Self>) {}
        }
        let mut actor = Collect::default();
        let mut effects = Effects::new();
        let mut slab = TimerSlab::new();
        let mut ctx = Context::new(
            ProcessId::new(1),
            3,
            ClockTime::from_ticks(0),
            &mut slab,
            &mut effects,
        );
        actor.on_message_batch(ProcessId::new(0), vec![3, 1, 2], &mut ctx);
        assert_eq!(actor.0, vec![3, 1, 2]);
    }
}
