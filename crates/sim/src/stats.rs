//! Latency aggregation for experiment reporting.

use crate::time::SimDuration;

/// Summary statistics over a set of operation latencies.
///
/// # Examples
///
/// ```
/// use skewbound_sim::stats::LatencySummary;
/// use skewbound_sim::time::SimDuration;
///
/// let lats: Vec<_> = [3u64, 1, 2].iter().map(|&t| SimDuration::from_ticks(t)).collect();
/// let s = LatencySummary::from_latencies(&lats).unwrap();
/// assert_eq!(s.max.as_ticks(), 3);
/// assert_eq!(s.min.as_ticks(), 1);
/// assert_eq!(s.count, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum latency.
    pub min: SimDuration,
    /// Maximum latency — the thesis's "time bound" for the workload.
    pub max: SimDuration,
    /// Mean latency, rounded down to whole ticks.
    pub mean: SimDuration,
    /// Median (50th percentile).
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
}

impl LatencySummary {
    /// Summarizes a non-empty slice of latencies. Returns `None` for an
    /// empty slice.
    #[must_use]
    pub fn from_latencies(latencies: &[SimDuration]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        let mut sorted: Vec<u64> = latencies.iter().map(|d| d.as_ticks()).collect();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&t| u128::from(t)).sum();
        let mean = u64::try_from(sum / count as u128).expect("mean overflow");
        Some(LatencySummary {
            count,
            min: SimDuration::from_ticks(sorted[0]),
            max: SimDuration::from_ticks(sorted[count - 1]),
            mean: SimDuration::from_ticks(mean),
            p50: SimDuration::from_ticks(percentile(&sorted, 50)),
            p99: SimDuration::from_ticks(percentile(&sorted, 99)),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct > 100`.
fn percentile(sorted: &[u64], pct: u32) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(pct <= 100, "percentile must be in 0..=100");
    if pct == 0 {
        return sorted[0];
    }
    let rank = (u64::from(pct) * sorted.len() as u64).div_ceil(100);
    sorted[(rank as usize).clamp(1, sorted.len()) - 1]
}

impl LatencySummary {
    /// Merges two summaries as if their samples were pooled. Percentile
    /// fields are upper-bounded by taking the max of the parts (exact
    /// pooling would need the raw samples).
    #[must_use]
    pub fn merged(self, other: LatencySummary) -> LatencySummary {
        let count = self.count + other.count;
        let total = self.mean.as_ticks() as u128 * self.count as u128
            + other.mean.as_ticks() as u128 * other.count as u128;
        LatencySummary {
            count,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            mean: SimDuration::from_ticks(
                u64::try_from(total / count as u128).expect("mean overflow"),
            ),
            p50: self.p50.max(other.p50),
            p99: self.p99.max(other.p99),
        }
    }
}

impl core::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} min={} p50={} mean={} p99={} max={}",
            self.count, self.min, self.p50, self.mean, self.p99, self.max
        )
    }
}

/// The host process's peak resident set size in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `0` on platforms without
/// procfs or if the field is missing — callers treat `0` as "not
/// measured". Peak RSS is a whole-process high-water mark, so it is
/// meaningful per *process lifetime* (one bench invocation), not per
/// individual run.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(t: u64) -> SimDuration {
        SimDuration::from_ticks(t)
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(LatencySummary::from_latencies(&[]), None);
    }

    #[test]
    fn single_sample() {
        let s = LatencySummary::from_latencies(&[d(5)]).unwrap();
        assert_eq!(s.min, d(5));
        assert_eq!(s.max, d(5));
        assert_eq!(s.mean, d(5));
        assert_eq!(s.p50, d(5));
        assert_eq!(s.p99, d(5));
    }

    #[test]
    fn percentiles_of_hundred() {
        let lats: Vec<_> = (1..=100).map(d).collect();
        let s = LatencySummary::from_latencies(&lats).unwrap();
        assert_eq!(s.p50, d(50));
        assert_eq!(s.p99, d(99));
        assert_eq!(s.max, d(100));
        assert_eq!(s.mean, d(50)); // 5050/100 = 50.5 → 50
    }

    #[test]
    fn merged_pools_extremes_and_mean() {
        let a = LatencySummary::from_latencies(&[d(2), d(4)]).unwrap();
        let b = LatencySummary::from_latencies(&[d(10), d(12)]).unwrap();
        let m = a.merged(b);
        assert_eq!(m.count, 4);
        assert_eq!(m.min, d(2));
        assert_eq!(m.max, d(12));
        assert_eq!(m.mean, d(7)); // (3*2 + 11*2)/4
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_bytes() > 0);
    }

    #[test]
    fn unsorted_input_ok() {
        let s = LatencySummary::from_latencies(&[d(9), d(1), d(5)]).unwrap();
        assert_eq!(s.min, d(1));
        assert_eq!(s.max, d(9));
        assert_eq!(s.p50, d(5));
    }
}
