//! Simulated time.
//!
//! The thesis's model measures everything — message delays `[d − u, d]`,
//! clock skew `ε`, operation response times — in *real time*, while each
//! process only observes its *clock time*, offset from real time by a
//! per-process constant (clocks run at the real-time rate, no drift;
//! Chapter III §B.2).
//!
//! The engine works in integer "ticks" so that every experiment is exactly
//! reproducible and the worst-case schedules of the lower-bound proofs can
//! be expressed without rounding. A tick has no fixed physical meaning;
//! experiments in this repository conventionally use 1 tick = 1 µs.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in *real time* (the global time of the run), in ticks.
///
/// Real time starts at zero and never goes negative. Arithmetic that would
/// underflow panics, which in this codebase always indicates a malformed
/// scenario.
///
/// # Examples
///
/// ```
/// use skewbound_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.as_ticks(), 5);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_ticks(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in ticks.
///
/// # Examples
///
/// ```
/// use skewbound_sim::time::SimDuration;
///
/// let d = SimDuration::from_ticks(10_000);
/// assert_eq!(d / 4, SimDuration::from_ticks(2_500));
/// assert_eq!(d * 2, SimDuration::from_ticks(20_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

/// A *clock time*: what a process reads off its local clock.
///
/// `clock_time = real_time + offset` where the per-process `offset` may be
/// negative, so clock time is signed. Clock times of different processes
/// are comparable only up to the skew bound `ε`.
///
/// # Examples
///
/// ```
/// use skewbound_sim::time::{ClockTime, SimDuration};
///
/// let c = ClockTime::from_ticks(-3) + SimDuration::from_ticks(10);
/// assert_eq!(c, ClockTime::from_ticks(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ClockTime(i64);

/// A signed clock offset `c_i` relating a process's clock to real time
/// (`clock = real + offset`), in ticks.
///
/// Offsets are what the skew bound constrains: a run is admissible when
/// `|c_i − c_j| ≤ ε` for all process pairs (Chapter III §B.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ClockOffset(i64);

impl SimTime {
    /// The start of every run.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a duration (clamps at time zero).
    #[must_use]
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Checked subtraction of a duration.
    #[must_use]
    pub const fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_sub(d.0) {
            Some(t) => Some(SimTime(t)),
            None => None,
        }
    }

    /// The clock reading of a process with offset `off` at this real time.
    #[must_use]
    pub fn to_clock(self, off: ClockOffset) -> ClockTime {
        let t = i64::try_from(self.0).expect("real time exceeds i64 range");
        ClockTime(t + off.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn as_ticks(self) -> u64 {
        self.0
    }

    /// `true` when the duration is zero ticks.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        match self.0.checked_sub(other.0) {
            Some(d) => Some(SimDuration(d)),
            None => None,
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiplies by a rational `num/den`, rounding down.
    ///
    /// Used for bound formulas such as `(1 − 1/k)·u = u·(k−1)/k`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the intermediate product overflows `u128`
    /// beyond `u64` after division.
    #[must_use]
    pub fn mul_frac(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "mul_frac: zero denominator");
        let v = u128::from(self.0) * u128::from(num) / u128::from(den);
        SimDuration(u64::try_from(v).expect("mul_frac overflow"))
    }

    /// Multiplies by a rational `num/den`, rounding up.
    ///
    /// Used where rounding *down* would under-claim a guarantee — e.g.
    /// the optimal skew `ε = (1 − 1/n)·u`: a flooring of the true bound
    /// would let clock assignments exceed the claimed `ε`, so the bound
    /// must be taken at the ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or the intermediate product overflows `u128`
    /// beyond `u64` after division.
    #[must_use]
    pub fn mul_frac_ceil(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "mul_frac_ceil: zero denominator");
        let v = (u128::from(self.0) * u128::from(num)).div_ceil(u128::from(den));
        SimDuration(u64::try_from(v).expect("mul_frac_ceil overflow"))
    }
}

impl ClockTime {
    /// Clock reading zero.
    pub const ZERO: ClockTime = ClockTime(0);

    /// Creates a clock time from a raw (signed) tick count.
    #[must_use]
    pub const fn from_ticks(ticks: i64) -> Self {
        ClockTime(ticks)
    }

    /// Returns the raw signed tick count.
    #[must_use]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// The real time at which a process with offset `off` reads this value,
    /// saturating at real time zero.
    ///
    /// Clock readings before real time zero are reachable in admissible
    /// runs — an accessor timestamp is `⟨local − X, pid⟩`, so an accessor
    /// invoked near `t = 0` on a negatively offset clock maps before the
    /// run began. Saturation keeps such timestamps ordered consistently
    /// (everything pre-run collapses to `t = 0`, which precedes every
    /// in-run event); use [`ClockTime::checked_to_real`] to distinguish
    /// the pre-run case.
    #[must_use]
    pub fn to_real(self, off: ClockOffset) -> SimTime {
        self.checked_to_real(off).unwrap_or(SimTime::ZERO)
    }

    /// The real time at which a process with offset `off` reads this value,
    /// or `None` if that real time precedes the run (would be negative).
    #[must_use]
    pub fn checked_to_real(self, off: ClockOffset) -> Option<SimTime> {
        let t = self.0.checked_sub(off.0)?;
        u64::try_from(t).ok().map(SimTime)
    }
}

impl ClockOffset {
    /// The zero offset (clock equals real time).
    pub const ZERO: ClockOffset = ClockOffset(0);

    /// Creates an offset from a raw signed tick count.
    #[must_use]
    pub const fn from_ticks(ticks: i64) -> Self {
        ClockOffset(ticks)
    }

    /// Returns the raw signed tick count.
    #[must_use]
    pub const fn as_ticks(self) -> i64 {
        self.0
    }

    /// The absolute difference between two offsets, as a duration.
    ///
    /// This is the pairwise skew the admissibility condition bounds by `ε`.
    #[must_use]
    pub fn skew_to(self, other: ClockOffset) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracting past time zero"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime difference would be negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow: result would be negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Add<SimDuration> for ClockTime {
    type Output = ClockTime;
    fn add(self, rhs: SimDuration) -> ClockTime {
        let d = i64::try_from(rhs.0).expect("duration exceeds i64 range");
        ClockTime(self.0.checked_add(d).expect("ClockTime overflow"))
    }
}

impl Sub<SimDuration> for ClockTime {
    type Output = ClockTime;
    fn sub(self, rhs: SimDuration) -> ClockTime {
        let d = i64::try_from(rhs.0).expect("duration exceeds i64 range");
        ClockTime(self.0.checked_sub(d).expect("ClockTime underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for ClockTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ClockTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for ClockOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "off{:+}", self.0)
    }
}

impl fmt::Display for ClockOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+}", self.0)
    }
}

// --- wall-clock interop (real-thread runtime; 1 tick = 1 µs) ----------

/// Converts a tick count (µs) to a wall-clock duration. Total: every
/// `u64` tick count maps to a representable `Duration`.
pub(crate) fn ticks_to_duration(d: SimDuration) -> std::time::Duration {
    std::time::Duration::from_micros(d.as_ticks())
}

/// Converts a wall-clock duration since the epoch to sim ticks (µs),
/// truncating sub-tick remainders and saturating at `u64::MAX` ticks —
/// a run would have to last ~584 thousand years to hit the saturation,
/// but saturating keeps the conversion total and monotone instead of
/// panicking.
pub(crate) fn duration_to_ticks(d: std::time::Duration) -> SimTime {
    SimTime::from_ticks(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

/// Real time since the runtime epoch, in sim ticks. Instants before the
/// epoch clamp to zero (monotone, never panics).
pub(crate) fn instant_to_sim(epoch: std::time::Instant, at: std::time::Instant) -> SimTime {
    duration_to_ticks(at.saturating_duration_since(epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    fn time_difference() {
        let a = SimTime::from_ticks(12);
        let b = SimTime::from_ticks(7);
        assert_eq!(a - b, SimDuration::from_ticks(5));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn time_difference_negative_panics() {
        let _ = SimTime::from_ticks(7) - SimTime::from_ticks(12);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimTime::from_ticks(3).saturating_sub(SimDuration::from_ticks(9)),
            SimTime::ZERO
        );
    }

    #[test]
    fn clock_conversion_roundtrip() {
        let off = ClockOffset::from_ticks(-4);
        let t = SimTime::from_ticks(10);
        let c = t.to_clock(off);
        assert_eq!(c, ClockTime::from_ticks(6));
        assert_eq!(c.to_real(off), t);
    }

    #[test]
    fn negative_offset_clock_before_zero() {
        let off = ClockOffset::from_ticks(-4);
        assert_eq!(SimTime::ZERO.to_clock(off), ClockTime::from_ticks(-4));
    }

    #[test]
    fn pre_run_clock_reading_saturates_to_real_zero() {
        // An accessor timestamp ⟨local − X, pid⟩ taken near t = 0 on a
        // positively offset clock maps before the run began: with off=+5,
        // clock reading 3 corresponds to real time −2.
        let off = ClockOffset::from_ticks(5);
        let c = ClockTime::from_ticks(3);
        assert_eq!(c.checked_to_real(off), None);
        assert_eq!(c.to_real(off), SimTime::ZERO);
        // At or after the boundary both forms agree.
        assert_eq!(
            ClockTime::from_ticks(5).checked_to_real(off),
            Some(SimTime::ZERO)
        );
        assert_eq!(
            ClockTime::from_ticks(9).to_real(off),
            SimTime::from_ticks(4)
        );
    }

    #[test]
    fn skew_is_symmetric() {
        let a = ClockOffset::from_ticks(3);
        let b = ClockOffset::from_ticks(-2);
        assert_eq!(a.skew_to(b), SimDuration::from_ticks(5));
        assert_eq!(b.skew_to(a), SimDuration::from_ticks(5));
    }

    #[test]
    fn mul_frac_rounds_down() {
        // (1 - 1/3) * 10 = 6.66… → 6
        assert_eq!(
            SimDuration::from_ticks(10).mul_frac(2, 3),
            SimDuration::from_ticks(6)
        );
    }

    #[test]
    fn mul_frac_ceil_rounds_up() {
        // (1 - 1/3) * 10 = 6.66… → 7
        assert_eq!(
            SimDuration::from_ticks(10).mul_frac_ceil(2, 3),
            SimDuration::from_ticks(7)
        );
        // Exact fractions agree between the two directions.
        assert_eq!(
            SimDuration::from_ticks(10).mul_frac_ceil(1, 2),
            SimDuration::from_ticks(10).mul_frac(1, 2),
        );
        assert_eq!(SimDuration::ZERO.mul_frac_ceil(2, 3), SimDuration::ZERO);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_ticks(9);
        assert_eq!(d * 3, SimDuration::from_ticks(27));
        assert_eq!(d / 2, SimDuration::from_ticks(4));
        assert_eq!(
            d.min(SimDuration::from_ticks(4)),
            SimDuration::from_ticks(4)
        );
        assert_eq!(d.max(SimDuration::from_ticks(4)), d);
    }

    #[test]
    fn clock_time_arithmetic() {
        let c = ClockTime::from_ticks(-2);
        assert_eq!(c + SimDuration::from_ticks(5), ClockTime::from_ticks(3));
        assert_eq!(c - SimDuration::from_ticks(5), ClockTime::from_ticks(-7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", SimTime::from_ticks(5)), "t5");
        assert_eq!(format!("{:?}", SimDuration::from_ticks(5)), "5t");
        assert_eq!(format!("{:?}", ClockOffset::from_ticks(-5)), "off-5");
    }

    // --- wall-clock conversion edge cases (rt runtime) ------------------

    #[test]
    fn ticks_to_duration_zero_and_extremes() {
        assert_eq!(ticks_to_duration(SimDuration::ZERO), Duration::ZERO);
        assert_eq!(
            ticks_to_duration(SimDuration::from_ticks(1)),
            Duration::from_micros(1)
        );
        // u64::MAX µs must convert without overflow or panic.
        let max = ticks_to_duration(SimDuration::from_ticks(u64::MAX));
        assert_eq!(max, Duration::from_micros(u64::MAX));
    }

    #[test]
    fn duration_to_ticks_truncates_sub_tick() {
        assert_eq!(duration_to_ticks(Duration::ZERO).as_ticks(), 0);
        // Anything under one microsecond is sub-tick and truncates to 0.
        assert_eq!(duration_to_ticks(Duration::from_nanos(999)).as_ticks(), 0);
        assert_eq!(duration_to_ticks(Duration::from_nanos(1000)).as_ticks(), 1);
        assert_eq!(duration_to_ticks(Duration::from_nanos(1999)).as_ticks(), 1);
    }

    #[test]
    fn duration_to_ticks_saturates_near_u64_max() {
        // Exactly u64::MAX µs round-trips.
        assert_eq!(
            duration_to_ticks(Duration::from_micros(u64::MAX)).as_ticks(),
            u64::MAX
        );
        // Beyond u64::MAX µs (Duration::MAX ≈ u64::MAX seconds) the
        // conversion saturates instead of panicking.
        assert_eq!(duration_to_ticks(Duration::MAX).as_ticks(), u64::MAX);
    }

    #[test]
    fn duration_to_ticks_is_monotone() {
        let ladder = [
            Duration::ZERO,
            Duration::from_nanos(1),
            Duration::from_nanos(999),
            Duration::from_micros(1),
            Duration::from_millis(1),
            Duration::from_secs(1),
            Duration::from_micros(u64::MAX),
            Duration::MAX,
        ];
        for pair in ladder.windows(2) {
            assert!(
                duration_to_ticks(pair[0]) <= duration_to_ticks(pair[1]),
                "{pair:?} went non-monotone"
            );
        }
    }

    #[test]
    fn instant_to_sim_clamps_pre_epoch_and_stays_monotone() {
        let epoch = Instant::now();
        // An instant before the epoch clamps to tick 0 (no underflow).
        assert_eq!(
            instant_to_sim(epoch + Duration::from_millis(5), epoch).as_ticks(),
            0
        );
        assert_eq!(instant_to_sim(epoch, epoch).as_ticks(), 0);
        // Sub-tick progress truncates to 0 rather than jumping.
        assert_eq!(
            instant_to_sim(epoch, epoch + Duration::from_nanos(500)).as_ticks(),
            0
        );
        let mut last = SimTime::ZERO;
        for ms in [0u64, 1, 2, 10, 100] {
            let t = instant_to_sim(epoch, epoch + Duration::from_millis(ms));
            assert!(t >= last, "instant_to_sim went backwards at {ms} ms");
            last = t;
        }
        assert_eq!(last.as_ticks(), 100_000);
    }
}
