//! Identifier newtypes for processes, operations, messages and timers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifies one of the `n` processes in the system, `p0 … p(n−1)`.
///
/// Process ids double as the tie-breaker in operation timestamps
/// (`⟨clock_time, process_id⟩`), so their ordering is meaningful.
///
/// # Examples
///
/// ```
/// use skewbound_sim::ids::ProcessId;
///
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(format!("{p}"), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

/// Identifies a single operation *instance* within a run (unique across
/// processes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(u64);

/// Identifies a message instance within a run.
///
/// The thesis assumes every message carries a unique id identifying sender
/// and recipient (Chapter III §B.2); the engine assigns these.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId(u64);

/// Identifies a pending timer at a process. Returned by
/// [`Context::set_timer`](crate::actor::Context::set_timer) and accepted by
/// [`Context::cancel_timer`](crate::actor::Context::cancel_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId(u64);

impl ProcessId {
    /// Creates a process id from its index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// The zero-based index of the process.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw id value.
    #[must_use]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all process ids `p0 … p(n−1)`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..u32::try_from(n).expect("process count exceeds u32")).map(ProcessId)
    }
}

impl OpId {
    /// Creates an operation id from a raw value.
    #[must_use]
    pub const fn new(v: u64) -> Self {
        OpId(v)
    }

    /// The raw id value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl MsgId {
    /// Creates a message id from a raw value.
    #[must_use]
    pub const fn new(v: u64) -> Self {
        MsgId(v)
    }

    /// The raw id value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl TimerId {
    const SLOT_BITS: u32 = 32;
    const SLOT_MASK: u64 = (1 << Self::SLOT_BITS) - 1;

    /// Creates a timer id from a raw value.
    #[must_use]
    pub const fn new(v: u64) -> Self {
        TimerId(v)
    }

    /// The raw id value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Packs a slab coordinate into an id: `(generation << 32) | slot`
    /// (the [`TimerSlab`](crate::timers::TimerSlab) scheme).
    #[must_use]
    pub const fn from_parts(generation: u32, slot: u32) -> Self {
        TimerId(((generation as u64) << Self::SLOT_BITS) | slot as u64)
    }

    /// The slab slot this id addresses.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // masked to 32 bits
    pub const fn slot(self) -> u32 {
        (self.0 & Self::SLOT_MASK) as u32
    }

    /// The slab generation this id was minted under.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // shifted into 32 bits
    pub const fn generation(self) -> u32 {
        (self.0 >> Self::SLOT_BITS) as u32
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m#{}", self.0)
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_iteration() {
        let ids: Vec<_> = ProcessId::all(3).collect();
        assert_eq!(
            ids,
            vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
        );
    }

    #[test]
    fn process_id_ordering_matches_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ProcessId::new(4)), "p4");
        assert_eq!(format!("{:?}", OpId::new(7)), "op#7");
        assert_eq!(format!("{:?}", MsgId::new(9)), "m#9");
        assert_eq!(format!("{:?}", TimerId::new(2)), "timer#2");
    }

    #[test]
    fn timer_id_packing_round_trips() {
        let id = TimerId::from_parts(7, 42);
        assert_eq!(id.generation(), 7);
        assert_eq!(id.slot(), 42);
        assert_eq!(id, TimerId::new((7 << 32) | 42));
        let extremes = TimerId::from_parts(u32::MAX, u32::MAX);
        assert_eq!(extremes.generation(), u32::MAX);
        assert_eq!(extremes.slot(), u32::MAX);
    }
}
