//! Generation-stamped payload slabs: u32-indexed pools for in-flight
//! event payloads.
//!
//! The engine's event queue used to move whole `Scheduled<A>` values —
//! operation, message or timer payload included — through a binary
//! heap. A [`Slab`] splits that into columns: payloads live in a
//! recycled slot pool and the queue carries only a [`SlabRef`] (slot
//! index plus generation), eight bytes of `Copy` data. Slots return to
//! a free list when their payload is taken, so steady-state simulation
//! performs no payload allocation at all — the pool high-water mark is
//! the peak number of *concurrently* in-flight events, not the total
//! ever scheduled.
//!
//! The generation stamp extends the [`TimerSlab`](crate::timers)
//! pattern to arbitrary payloads: every recycle bumps the slot's
//! generation, so a stale reference (a queue entry that was already
//! resolved) can never silently read a successor payload — [`Slab::get`]
//! and [`Slab::take`] panic instead.

/// A `Copy` handle to a payload stored in a [`Slab`].
///
/// Valid from [`Slab::insert`] until the matching [`Slab::take`];
/// using it afterwards panics (generation mismatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabRef {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A u32-indexed pool of payloads with generation-stamped handles (see
/// the [module docs](self)).
///
/// # Examples
///
/// ```
/// use skewbound_sim::slab::Slab;
///
/// let mut slab = Slab::new();
/// let a = slab.insert("hello");
/// assert_eq!(slab.get(a), &"hello");
/// assert_eq!(slab.take(a), "hello");
/// let b = slab.insert("world"); // recycles a's slot, new generation
/// assert_ne!(a, b);
/// assert_eq!(slab.take(b), "world");
/// assert_eq!(slab.live(), 0);
/// ```
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Creates an empty slab with room for `capacity` concurrently
    /// stored payloads before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Stores `value` and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` payloads are stored at once.
    pub fn insert(&mut self, value: T) -> SlabRef {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.value.is_none(), "free-listed slot still occupied");
                s.value = Some(value);
                SlabRef {
                    slot,
                    generation: s.generation,
                }
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX concurrently stored payloads");
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                SlabRef {
                    slot,
                    generation: 0,
                }
            }
        }
    }

    /// Borrows the payload behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (already taken).
    #[must_use]
    pub fn get(&self, r: SlabRef) -> &T {
        let s = &self.slots[r.slot as usize];
        assert_eq!(s.generation, r.generation, "stale slab reference");
        s.value.as_ref().expect("stale slab reference")
    }

    /// Removes and returns the payload behind `r`, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (already taken).
    pub fn take(&mut self, r: SlabRef) -> T {
        let s = &mut self.slots[r.slot as usize];
        assert_eq!(s.generation, r.generation, "stale slab reference");
        let value = s.value.take().expect("stale slab reference");
        // Generations only guard against double-resolution bugs within
        // one run; wrapping after 2^32 recycles of one slot is fine.
        s.generation = s.generation.wrapping_add(1);
        self.free.push(r.slot);
        value
    }

    /// Number of payloads currently stored.
    ///
    /// This is the arena's leak check: every queued event takes its
    /// payload back out when it pops (stale timer expiries included), so
    /// at quiescence — event queue empty — every payload slab must
    /// report zero. The engine asserts exactly that at end of run and
    /// surfaces the count as
    /// [`SimReport::leaked_payloads`](crate::engine::SimReport::leaked_payloads).
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Alias for [`Slab::live_count`].
    #[must_use]
    pub fn live(&self) -> usize {
        self.live_count()
    }

    /// High-water mark: the total number of slots ever allocated.
    #[must_use]
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_recycles_slots() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let b = slab.insert(2);
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.take(a), 1);
        let c = slab.insert(3);
        assert_eq!(slab.capacity_used(), 2, "slot was recycled, not grown");
        assert_eq!(slab.take(b), 2);
        assert_eq!(slab.take(c), 3);
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.live_count(), 0);
    }

    #[test]
    fn live_count_tracks_insert_take() {
        let mut slab = Slab::new();
        assert_eq!(slab.live_count(), 0);
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.live_count(), 2);
        let _ = slab.take(a);
        assert_eq!(slab.live_count(), 1);
        let _ = slab.take(b);
        assert_eq!(slab.live_count(), 0);
        // Recycled slots don't count as live.
        let c = slab.insert("c");
        assert_eq!(slab.live_count(), 1);
        let _ = slab.take(c);
        assert_eq!(slab.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "stale slab reference")]
    fn double_take_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        assert_eq!(slab.take(a), 7);
        let _ = slab.take(a);
    }

    #[test]
    #[should_panic(expected = "stale slab reference")]
    fn stale_get_after_recycle_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        let _ = slab.take(a);
        let _b = slab.insert(8); // same slot, new generation
        let _ = slab.get(a);
    }

    #[test]
    fn get_borrows_without_consuming() {
        let mut slab = Slab::new();
        let a = slab.insert(String::from("x"));
        assert_eq!(slab.get(a), "x");
        assert_eq!(slab.get(a), "x");
        assert_eq!(slab.take(a), "x");
    }
}
