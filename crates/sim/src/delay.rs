//! Message-delay models for the partially synchronous network.
//!
//! The admissibility condition requires every delivered message to take
//! between `d − u` and `d` real time (Chapter III §B.3). The engine asks a
//! [`DelayModel`] for each message's delay and validates the answer against
//! the bounds, so a buggy model cannot silently produce an inadmissible run.
//!
//! The lower-bound proofs rely on *specific* delay assignments, e.g. the
//! pairwise-uniform matrices of Theorems C.1/E.1 and the circulant matrix
//! `d_{i,j} = d − ((i−j) mod k)/k · u` of Theorem D.1; [`MatrixDelay`]
//! expresses those. [`ScriptedDelay`] additionally overrides individual
//! messages by send index, which the *modified* time shift scenarios use.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::ProcessId;
use crate::time::{SimDuration, SimTime};

/// The network's delay bounds: every message takes between `d − u` and `d`.
///
/// # Examples
///
/// ```
/// use skewbound_sim::delay::DelayBounds;
/// use skewbound_sim::time::SimDuration;
///
/// let b = DelayBounds::new(SimDuration::from_ticks(100), SimDuration::from_ticks(30));
/// assert_eq!(b.min().as_ticks(), 70);
/// assert!(b.contains(SimDuration::from_ticks(85)));
/// assert!(!b.contains(SimDuration::from_ticks(101)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBounds {
    d: SimDuration,
    u: SimDuration,
}

/// Why a requested `[d − u, d]` window is inadmissible. Returned by
/// [`DelayBounds::try_new`] so callers wiring up transports from
/// untrusted configuration can reject bad windows in release builds
/// instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayBoundsError {
    /// `d` was zero: a zero-width window at zero means instantaneous
    /// delivery, which the partially synchronous model excludes.
    ZeroMax,
    /// `u > d`: the minimum delay `d − u` would be negative.
    UncertaintyExceedsMax {
        /// The requested maximum delay.
        d: SimDuration,
        /// The requested (too large) uncertainty.
        u: SimDuration,
    },
}

impl core::fmt::Display for DelayBoundsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DelayBoundsError::ZeroMax => write!(f, "delay bound d must be positive"),
            DelayBoundsError::UncertaintyExceedsMax { d, u } => {
                write!(f, "uncertainty u must not exceed d (u = {u}, d = {d})")
            }
        }
    }
}

impl std::error::Error for DelayBoundsError {}

impl DelayBounds {
    /// Creates bounds with maximum delay `d` and uncertainty `u`,
    /// rejecting inadmissible windows as a returned error (checked in
    /// release builds too — transports built from configuration go
    /// through this).
    ///
    /// # Errors
    ///
    /// [`DelayBoundsError::ZeroMax`] if `d` is zero,
    /// [`DelayBoundsError::UncertaintyExceedsMax`] if `u > d`.
    pub fn try_new(d: SimDuration, u: SimDuration) -> Result<Self, DelayBoundsError> {
        if d.is_zero() {
            return Err(DelayBoundsError::ZeroMax);
        }
        if u > d {
            return Err(DelayBoundsError::UncertaintyExceedsMax { d, u });
        }
        Ok(DelayBounds { d, u })
    }

    /// Creates bounds with maximum delay `d` and uncertainty `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u > d` (the minimum delay `d − u` would be negative) or
    /// if `d` is zero.
    #[must_use]
    pub fn new(d: SimDuration, u: SimDuration) -> Self {
        match DelayBounds::try_new(d, u) {
            Ok(bounds) => bounds,
            Err(DelayBoundsError::ZeroMax) => panic!("delay bound d must be positive"),
            Err(DelayBoundsError::UncertaintyExceedsMax { .. }) => {
                panic!("uncertainty u must not exceed d")
            }
        }
    }

    /// The maximum message delay `d`.
    #[must_use]
    pub const fn max(self) -> SimDuration {
        self.d
    }

    /// The delay uncertainty `u`.
    #[must_use]
    pub const fn uncertainty(self) -> SimDuration {
        self.u
    }

    /// The minimum message delay `d − u`.
    #[must_use]
    pub fn min(self) -> SimDuration {
        self.d - self.u
    }

    /// `true` when `delay ∈ [d − u, d]`.
    #[must_use]
    pub fn contains(self, delay: SimDuration) -> bool {
        self.min() <= delay && delay <= self.d
    }
}

/// Everything a [`DelayModel`] may condition a delay on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Real time at which the message was sent.
    pub sent_at: SimTime,
    /// Zero-based index of this message among all messages sent from
    /// `from` to `to` in this run.
    pub pair_seq: u64,
}

/// Assigns a delay to every message.
///
/// Implementations are the run *adversary*: within `[d − u, d]` they may
/// pick any value, including the worst-case patterns of the lower-bound
/// proofs. Returned delays are validated by the engine; an out-of-range
/// delay aborts the run with a clear panic rather than producing an
/// inadmissible history.
pub trait DelayModel {
    /// The delay for the message described by `meta`.
    fn delay(&mut self, meta: MsgMeta) -> SimDuration;

    /// The bounds this model promises to respect.
    fn bounds(&self) -> DelayBounds;
}

/// Every message takes exactly the same delay.
#[derive(Debug, Clone)]
pub struct FixedDelay {
    bounds: DelayBounds,
    delay: SimDuration,
}

impl FixedDelay {
    /// All messages take exactly `delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay ∉ [d − u, d]`.
    #[must_use]
    pub fn new(bounds: DelayBounds, delay: SimDuration) -> Self {
        assert!(
            bounds.contains(delay),
            "fixed delay {delay:?} outside bounds [{:?}, {:?}]",
            bounds.min(),
            bounds.max()
        );
        FixedDelay { bounds, delay }
    }

    /// All messages take the maximum delay `d`.
    #[must_use]
    pub fn maximal(bounds: DelayBounds) -> Self {
        FixedDelay::new(bounds, bounds.max())
    }

    /// All messages take the minimum delay `d − u`.
    #[must_use]
    pub fn minimal(bounds: DelayBounds) -> Self {
        FixedDelay::new(bounds, bounds.min())
    }
}

impl DelayModel for FixedDelay {
    fn delay(&mut self, _meta: MsgMeta) -> SimDuration {
        self.delay
    }

    fn bounds(&self) -> DelayBounds {
        self.bounds
    }
}

/// Delays drawn uniformly at random from `[d − u, d]`, seeded for
/// reproducibility.
#[derive(Debug)]
pub struct UniformDelay {
    bounds: DelayBounds,
    rng: StdRng,
}

impl UniformDelay {
    /// Creates a model seeded with `seed`.
    #[must_use]
    pub fn new(bounds: DelayBounds, seed: u64) -> Self {
        UniformDelay {
            bounds,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for UniformDelay {
    fn delay(&mut self, _meta: MsgMeta) -> SimDuration {
        let lo = self.bounds.min().as_ticks();
        let hi = self.bounds.max().as_ticks();
        SimDuration::from_ticks(self.rng.gen_range(lo..=hi))
    }

    fn bounds(&self) -> DelayBounds {
        self.bounds
    }
}

/// Pairwise-uniform delays: a fixed delay per ordered process pair, the
/// shape every proof in Chapter IV uses ("a run with pairwise uniform
/// message delays").
#[derive(Debug, Clone)]
pub struct MatrixDelay {
    bounds: DelayBounds,
    matrix: Vec<Vec<SimDuration>>,
}

impl MatrixDelay {
    /// Builds the matrix by evaluating `f(from, to)` for every ordered
    /// pair. Diagonal entries are never used (processes do not message
    /// themselves) and are filled with `d`.
    ///
    /// # Panics
    ///
    /// Panics if any off-diagonal `f(i, j) ∉ [d − u, d]`.
    #[must_use]
    pub fn from_fn<F>(n: usize, bounds: DelayBounds, mut f: F) -> Self
    where
        F: FnMut(ProcessId, ProcessId) -> SimDuration,
    {
        let mut matrix = vec![vec![bounds.max(); n]; n];
        for i in ProcessId::all(n) {
            for j in ProcessId::all(n) {
                if i == j {
                    continue;
                }
                let delay = f(i, j);
                assert!(
                    bounds.contains(delay),
                    "delay {delay:?} for {i}->{j} outside [{:?}, {:?}]",
                    bounds.min(),
                    bounds.max()
                );
                matrix[i.index()][j.index()] = delay;
            }
        }
        MatrixDelay { bounds, matrix }
    }

    /// The delay assigned to the ordered pair `from → to`.
    #[must_use]
    pub fn pair(&self, from: ProcessId, to: ProcessId) -> SimDuration {
        self.matrix[from.index()][to.index()]
    }

    /// The circulant matrix of Theorem D.1 over the first `k` processes:
    /// `d_{i,j} = d − ((i − j) mod k)/k · u` for `i, j < k`, and the
    /// midpoint `d − u/2` for any pair involving a process `≥ k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > n`.
    #[must_use]
    pub fn circulant(n: usize, k: usize, bounds: DelayBounds) -> Self {
        assert!(k >= 2, "circulant requires k >= 2");
        assert!(k <= n, "k must not exceed n");
        let d = bounds.max();
        let u = bounds.uncertainty();
        let mid = d - u / 2;
        Self::from_fn(n, bounds, |i, j| {
            if i.index() < k && j.index() < k {
                let r = (i.index() + k - j.index()) % k;
                d - u.mul_frac(r as u64, k as u64)
            } else {
                mid
            }
        })
    }
}

impl DelayModel for MatrixDelay {
    fn delay(&mut self, meta: MsgMeta) -> SimDuration {
        self.pair(meta.from, meta.to)
    }

    fn bounds(&self) -> DelayBounds {
        self.bounds
    }
}

/// Bimodal delays: most messages take the fast path (`d − u`), a seeded
/// fraction take the slow path (`d`) — a crude but useful model of a LAN
/// with a congested tail, stressing implementations with realistic
/// *mixtures* rather than uniform noise.
#[derive(Debug)]
pub struct BimodalDelay {
    bounds: DelayBounds,
    slow_percent: u8,
    rng: StdRng,
}

impl BimodalDelay {
    /// Creates a model where `slow_percent`% of messages take the maximum
    /// delay `d` and the rest take the minimum `d − u`.
    ///
    /// # Panics
    ///
    /// Panics if `slow_percent > 100`.
    #[must_use]
    pub fn new(bounds: DelayBounds, slow_percent: u8, seed: u64) -> Self {
        assert!(slow_percent <= 100, "percentage out of range");
        BimodalDelay {
            bounds,
            slow_percent,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for BimodalDelay {
    fn delay(&mut self, _meta: MsgMeta) -> SimDuration {
        if self.rng.gen_range(0u8..100) < self.slow_percent {
            self.bounds.max()
        } else {
            self.bounds.min()
        }
    }

    fn bounds(&self) -> DelayBounds {
        self.bounds
    }
}

/// A base model plus per-message overrides keyed by
/// `(from, to, pair_seq)`.
///
/// The modified-time-shift scenarios need control over *individual*
/// messages ("the first message from `p_i` to `p_j` takes `d`, the second
/// `d − u`"); this model expresses that while delegating everything else
/// to a base model.
pub struct ScriptedDelay<M> {
    base: M,
    overrides: HashMap<(ProcessId, ProcessId, u64), SimDuration>,
}

impl<M: std::fmt::Debug> std::fmt::Debug for ScriptedDelay<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedDelay")
            .field("base", &self.base)
            .field("overrides", &self.overrides.len())
            .finish()
    }
}

impl<M: DelayModel> ScriptedDelay<M> {
    /// Wraps `base` with no overrides.
    #[must_use]
    pub fn new(base: M) -> Self {
        ScriptedDelay {
            base,
            overrides: HashMap::new(),
        }
    }

    /// Overrides the `seq`-th message (zero-based) from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is outside the base model's bounds.
    pub fn set(&mut self, from: ProcessId, to: ProcessId, seq: u64, delay: SimDuration) {
        let bounds = self.base.bounds();
        assert!(
            bounds.contains(delay),
            "scripted delay {delay:?} outside [{:?}, {:?}]",
            bounds.min(),
            bounds.max()
        );
        self.overrides.insert((from, to, seq), delay);
    }

    /// Builder-style variant of [`ScriptedDelay::set`].
    #[must_use]
    pub fn with(mut self, from: ProcessId, to: ProcessId, seq: u64, delay: SimDuration) -> Self {
        self.set(from, to, seq, delay);
        self
    }
}

impl<M: DelayModel> DelayModel for ScriptedDelay<M> {
    fn delay(&mut self, meta: MsgMeta) -> SimDuration {
        if let Some(&d) = self.overrides.get(&(meta.from, meta.to, meta.pair_seq)) {
            d
        } else {
            self.base.delay(meta)
        }
    }

    fn bounds(&self) -> DelayBounds {
        self.base.bounds()
    }
}

impl<M: DelayModel + ?Sized> DelayModel for Box<M> {
    fn delay(&mut self, meta: MsgMeta) -> SimDuration {
        (**self).delay(meta)
    }

    fn bounds(&self) -> DelayBounds {
        (**self).bounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> DelayBounds {
        DelayBounds::new(SimDuration::from_ticks(100), SimDuration::from_ticks(40))
    }

    fn meta(from: u32, to: u32, seq: u64) -> MsgMeta {
        MsgMeta {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            sent_at: SimTime::ZERO,
            pair_seq: seq,
        }
    }

    #[test]
    fn bounds_range() {
        let b = bounds();
        assert_eq!(b.min(), SimDuration::from_ticks(60));
        assert!(b.contains(SimDuration::from_ticks(60)));
        assert!(b.contains(SimDuration::from_ticks(100)));
        assert!(!b.contains(SimDuration::from_ticks(59)));
    }

    #[test]
    #[should_panic(expected = "u must not exceed d")]
    fn bounds_reject_u_gt_d() {
        let _ = DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(11));
    }

    #[test]
    fn try_new_returns_errors_instead_of_panicking() {
        // The release-build path for configuration-derived windows: both
        // inadmissible shapes come back as structured errors.
        assert_eq!(
            DelayBounds::try_new(SimDuration::ZERO, SimDuration::ZERO),
            Err(DelayBoundsError::ZeroMax)
        );
        let d = SimDuration::from_ticks(10);
        let u = SimDuration::from_ticks(11);
        let err = DelayBounds::try_new(d, u).unwrap_err();
        assert_eq!(err, DelayBoundsError::UncertaintyExceedsMax { d, u });
        assert!(err.to_string().contains("must not exceed"));
        let ok = DelayBounds::try_new(d, SimDuration::from_ticks(10)).unwrap();
        assert_eq!(ok.min(), SimDuration::ZERO);
        assert_eq!(ok.max(), d);
    }

    #[test]
    fn fixed_delay_constant() {
        let mut m = FixedDelay::new(bounds(), SimDuration::from_ticks(80));
        assert_eq!(m.delay(meta(0, 1, 0)), SimDuration::from_ticks(80));
        assert_eq!(m.delay(meta(1, 0, 5)), SimDuration::from_ticks(80));
    }

    #[test]
    #[should_panic(expected = "outside bounds")]
    fn fixed_delay_validates() {
        let _ = FixedDelay::new(bounds(), SimDuration::from_ticks(10));
    }

    #[test]
    fn uniform_delay_in_range_and_deterministic() {
        let mut a = UniformDelay::new(bounds(), 7);
        let mut b = UniformDelay::new(bounds(), 7);
        for i in 0..200 {
            let da = a.delay(meta(0, 1, i));
            let db = b.delay(meta(0, 1, i));
            assert_eq!(da, db, "same seed must give same delays");
            assert!(bounds().contains(da));
        }
    }

    #[test]
    fn matrix_delay_per_pair() {
        let m = MatrixDelay::from_fn(3, bounds(), |i, j| {
            if i.index() < j.index() {
                SimDuration::from_ticks(100)
            } else {
                SimDuration::from_ticks(60)
            }
        });
        let mut m = m;
        assert_eq!(m.delay(meta(0, 2, 0)), SimDuration::from_ticks(100));
        assert_eq!(m.delay(meta(2, 0, 0)), SimDuration::from_ticks(60));
    }

    #[test]
    fn circulant_matches_theorem_d1() {
        // k = 4, d = 100, u = 40: d_{i,j} = 100 − ((i−j) mod 4)·10.
        let b = bounds();
        let m = MatrixDelay::circulant(5, 4, b);
        let p = |i: u32| ProcessId::new(i);
        assert_eq!(m.pair(p(1), p(0)), SimDuration::from_ticks(90)); // r=1
        assert_eq!(m.pair(p(0), p(1)), SimDuration::from_ticks(70)); // r=3
        assert_eq!(m.pair(p(3), p(1)), SimDuration::from_ticks(80)); // r=2
                                                                     // Pairs involving p4 (index ≥ k) take the midpoint d − u/2 = 80.
        assert_eq!(m.pair(p(4), p(0)), SimDuration::from_ticks(80));
        assert_eq!(m.pair(p(2), p(4)), SimDuration::from_ticks(80));
        // Every entry admissible.
        for i in ProcessId::all(5) {
            for j in ProcessId::all(5) {
                if i != j {
                    assert!(b.contains(m.pair(i, j)));
                }
            }
        }
    }

    #[test]
    fn bimodal_mixes_extremes_only() {
        let mut m = BimodalDelay::new(bounds(), 30, 5);
        let mut fast = 0;
        let mut slow = 0;
        for i in 0..400 {
            match m.delay(meta(0, 1, i)).as_ticks() {
                60 => fast += 1,
                100 => slow += 1,
                other => panic!("unexpected delay {other}"),
            }
        }
        // Roughly 30% slow; loose bounds to stay seed-robust.
        assert!((60..=180).contains(&slow), "slow = {slow}");
        assert_eq!(fast + slow, 400);
    }

    #[test]
    fn scripted_overrides_only_selected_message() {
        let mut m = ScriptedDelay::new(FixedDelay::maximal(bounds())).with(
            ProcessId::new(0),
            ProcessId::new(1),
            1,
            SimDuration::from_ticks(60),
        );
        assert_eq!(m.delay(meta(0, 1, 0)), SimDuration::from_ticks(100));
        assert_eq!(m.delay(meta(0, 1, 1)), SimDuration::from_ticks(60));
        assert_eq!(m.delay(meta(0, 1, 2)), SimDuration::from_ticks(100));
        assert_eq!(m.delay(meta(1, 0, 1)), SimDuration::from_ticks(100));
    }

    #[test]
    #[should_panic(expected = "scripted delay")]
    fn scripted_validates_override() {
        let _ = ScriptedDelay::new(FixedDelay::maximal(bounds())).with(
            ProcessId::new(0),
            ProcessId::new(1),
            0,
            SimDuration::from_ticks(5),
        );
    }
}
