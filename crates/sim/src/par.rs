//! Deterministic parallel fan-out for scenario grids.
//!
//! The measurement harness (`skewbound-bench`) and the lower-bound
//! machinery (`skewbound-shift`) both sweep large grids of *independent*
//! scenarios: every cell fixes its own seed, clock assignment and delay
//! model, runs one simulation, and (often) checks the resulting history
//! for linearizability. Each cell is deterministic in isolation, so the
//! grid is embarrassingly parallel — as long as the results are put back
//! in input order, a parallel sweep is bit-identical to the sequential
//! one.
//!
//! [`run_grid`] is that primitive: it takes a slice of job descriptors
//! and a pure-per-job function, fans the jobs out over a scoped worker
//! pool (work-stealing via an atomic cursor), and returns the results
//! *in input order*. A panicking job does not poison the pool: the
//! remaining jobs still run, and the first panic is re-raised (or
//! returned, via [`try_run_grid`]) once the pool has drained.
//!
//! ## Choosing the worker count
//!
//! * `SKEWBOUND_PAR=0` (or `false`/`off`) — force sequential execution;
//!   the in-process fallback for `--sequential` CLI flags.
//! * `SKEWBOUND_THREADS=k` — use exactly `k` workers.
//! * otherwise — one worker per available core.
//!
//! Sequential mode runs the jobs on the calling thread with no pool at
//! all, which keeps single-threaded profiling honest.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A job panicked during [`try_run_grid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPanic {
    /// Input-order index of the panicking job.
    pub index: usize,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl core::fmt::Display for GridPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "grid job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for GridPanic {}

/// Number of workers [`run_grid`] would use for `jobs` jobs, honouring
/// `SKEWBOUND_PAR` / `SKEWBOUND_THREADS` (see the module docs).
#[must_use]
pub fn worker_count(jobs: usize) -> usize {
    configured_workers().min(jobs).max(1)
}

/// Worker count the environment asks for, before clamping to a job
/// count: `SKEWBOUND_PAR=0` forces 1, `SKEWBOUND_THREADS=k` forces `k`,
/// otherwise one per available core. The model checker's work-stealing
/// frontier (`skewbound-mc`) sizes its pool with this so both layers
/// obey the same knobs.
#[must_use]
pub fn available_workers() -> usize {
    configured_workers()
}

fn configured_workers() -> usize {
    if let Ok(par) = std::env::var("SKEWBOUND_PAR") {
        let par = par.trim().to_ascii_lowercase();
        if par == "0" || par == "false" || par == "off" {
            return 1;
        }
    }
    if let Ok(threads) = std::env::var("SKEWBOUND_THREADS") {
        if let Ok(k) = threads.trim().parse::<usize>() {
            return k.max(1);
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every job and returns the results in input order, or
/// the first (by input order) panic if any job panicked.
///
/// With more than one worker, jobs are claimed from an atomic cursor by
/// a scoped thread pool; with one worker (or one job, or sequential mode
/// via `SKEWBOUND_PAR=0`) they run inline on the calling thread. Either
/// way the result vector is ordered by job index, so a deterministic `f`
/// yields byte-identical output regardless of the worker count.
///
/// A panicking job is contained with `catch_unwind`: the pool drains the
/// remaining jobs normally and the earliest panic is reported once all
/// workers have joined.
pub fn try_run_grid<I, R, F>(jobs: &[I], f: F) -> Result<Vec<R>, GridPanic>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let workers = worker_count(jobs.len());
    if workers <= 1 {
        let mut out = Vec::with_capacity(jobs.len());
        for (index, job) in jobs.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(index, job))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(GridPanic {
                        index,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        return Ok(out);
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let slots = Mutex::new(slots);
    let first_panic: Mutex<Option<GridPanic>> = Mutex::new(None);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(index, &jobs[index]))) {
                        Ok(r) => local.push((index, r)),
                        Err(payload) => {
                            let panic = GridPanic {
                                index,
                                message: panic_message(payload.as_ref()),
                            };
                            let mut first = first_panic.lock().unwrap();
                            if first.as_ref().is_none_or(|p| panic.index < p.index) {
                                *first = Some(panic);
                            }
                        }
                    }
                }
                let mut slots = slots.lock().unwrap();
                for (index, r) in local {
                    slots[index] = Some(r);
                }
            });
        }
    });

    if let Some(panic) = first_panic.into_inner().unwrap() {
        return Err(panic);
    }
    let out: Vec<R> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect();
    Ok(out)
}

/// Like [`try_run_grid`], but re-raises the first panic.
///
/// # Panics
///
/// Panics with the original job's panic message if any job panicked.
pub fn run_grid<I, R, F>(jobs: &[I], f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    match try_run_grid(jobs, f) {
        Ok(out) => out,
        Err(panic) => panic!("{panic}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let out = run_grid(&jobs, |i, &job| {
            assert_eq!(i as u64, job);
            job * job
        });
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_is_surfaced_and_pool_drains() {
        let jobs: Vec<usize> = (0..64).collect();
        let err = try_run_grid(&jobs, |_, &job| {
            assert!(job != 13, "unlucky job");
            job
        })
        .unwrap_err();
        assert_eq!(err.index, 13);
        assert!(err.message.contains("unlucky job"), "{}", err.message);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = run_grid(&[], |_, job: &u32| *job);
        assert!(out.is_empty());
    }
}
