//! The deterministic discrete-event scheduler.
//!
//! This module is one of the two backends over the shared
//! [`NodeCore`]: it decides *when* each process
//! activates, while the node core decides *what* an activation does
//! (handler dispatch, effect draining, the one-pending-op invariant,
//! timer generations, trace emission, history recording — see
//! [`crate::node`]). The engine's own job is reduced to a virtual-time
//! event queue: a private `VirtualTransport` implementing
//! [`Transport`](crate::transport::Transport) assigns every send a
//! delay from the [`DelayModel`] and pops deliveries, timer expiries
//! and invocations back in deterministic `(time, seq)` order. The
//! queue is a calendar queue ([`crate::equeue`]) carrying `Copy` tags;
//! payloads live in generation-stamped slabs ([`crate::slab`]) whose
//! slots recycle, so steady-state scheduling allocates nothing.
//!
//! Identical inputs (actors, clocks, delay model, schedule, driver)
//! always produce identical runs: events at equal real times are
//! processed in schedule order, and all randomness lives in seeded
//! delay models and workloads.
//!
//! The engine enforces the model of Chapter III:
//!
//! * at most one pending operation per process (via the node core);
//! * every message delay within `[d − u, d]` (the bounds are validated
//!   at construction; each send is spot-checked in debug builds);
//! * local processing takes zero time;
//! * clocks are fixed offsets from real time.
//!
//! The real-thread counterpart is [`crate::rt`], which drives the same
//! node core from OS threads and a delay-injecting router.

use crate::actor::Actor;
use crate::clock::ClockAssignment;
use crate::delay::DelayModel;
use crate::history::History;
use crate::ids::{MsgId, ProcessId, TimerId};
use crate::node::{Activation, NodeCore, Stamp};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EngineTrace, Trace, TraceSink};
use crate::transport::{EvSlot, EvTag, TransportError, VirtualTransport};
use crate::workload::Driver;

/// Engine limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Abort the run after this many processed events (guards against
    /// actors that set timers forever).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 10_000_000,
        }
    }
}

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event cap was reached before quiescence.
    EventCapExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// A [`SchedulePolicy`] abandoned the run
    /// ([`ScheduleDecision::Abort`]) — e.g. a model-checking explorer
    /// proved the remaining branch redundant.
    PolicyAbort,
    /// The transport refused a send. Never produced by the in-process
    /// backends (their queues are infallible); byte-oriented backends
    /// surface peer/codec failures here.
    Transport(TransportError),
}

impl From<TransportError> for SimError {
    fn from(e: TransportError) -> Self {
        SimError::Transport(e)
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::EventCapExceeded { cap } => {
                write!(f, "event cap of {cap} events exceeded before quiescence")
            }
            SimError::PolicyAbort => write!(f, "the schedule policy abandoned the run"),
            SimError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a finished run.
///
/// Equality ignores [`SimReport::wall_nanos`]: two runs of the same
/// scenario are "the same run" when they process the same events to the
/// same simulated end time, regardless of how fast the host executed
/// them. This is what lets determinism tests compare reports across
/// sequential and parallel sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Number of events processed.
    pub events: u64,
    /// Real time of the last processed event.
    pub end_time: SimTime,
    /// Host wall-clock time the run took, in nanoseconds.
    pub wall_nanos: u64,
    /// Peak resident set size of the host process in bytes, if captured
    /// with [`SimReport::with_peak_rss`]; zero otherwise. Reading it is
    /// a `/proc` round-trip, so the run loops leave it to the caller —
    /// grid sweeps record it once per grid, scale runs per run. Ignored
    /// by equality, like [`SimReport::wall_nanos`].
    pub peak_rss_bytes: u64,
    /// Payload-arena slots (invoke / message / batch / timer) still live
    /// when the run loop returned. Every pop takes its payload out of
    /// the owning slab — stale timers included — so a quiescent run must
    /// report zero; anything else means a payload leaked (also asserted
    /// in debug builds at end of run).
    pub leaked_payloads: u64,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
            && self.end_time == other.end_time
            && self.leaked_payloads == other.leaked_payloads
    }
}

impl Eq for SimReport {}

impl SimReport {
    /// Stamps the report with the host's current peak RSS (see
    /// [`crate::stats::peak_rss_bytes`]).
    #[must_use]
    pub fn with_peak_rss(mut self) -> Self {
        self.peak_rss_bytes = crate::stats::peak_rss_bytes();
        self
    }

    /// Simulation throughput in events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let per_nano = self.events as f64 / self.wall_nanos as f64;
        per_nano * 1e9
    }
}

/// Metadata of one message transmission (payload omitted).
///
/// This is the raw material from which the `shift` crate reconstructs
/// runs-as-data for admissibility checking and chopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgEvent {
    /// Run-unique message id.
    pub id: MsgId,
    /// Sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// Real send time.
    pub sent_at: SimTime,
    /// Assigned delay.
    pub delay: SimDuration,
    /// Real delivery time (`sent_at + delay`).
    pub recv_at: SimTime,
}

pub(crate) enum EventKind<A: Actor> {
    Invoke {
        op: A::Op,
    },
    Deliver {
        from: ProcessId,
        msg: A::Msg,
        msg_id: MsgId,
    },
    DeliverBatch {
        from: ProcessId,
        first_id: MsgId,
        msgs: Vec<A::Msg>,
    },
    Timer {
        id: TimerId,
        timer: A::Timer,
    },
}

/// Read-only view of one schedulable event, as presented to a
/// [`SchedulePolicy`] by [`Simulation::run_scheduled_with`].
///
/// The `seq` field is the engine's internal scheduling sequence number:
/// it identifies the *same* event across deterministic replays of the
/// same choice prefix (the basis for sleep-set bookkeeping in explorers).
pub enum EventView<'a, A: Actor> {
    /// An operation invocation at `pid`.
    Invoke {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The invoked process.
        pid: ProcessId,
        /// The operation being invoked.
        op: &'a A::Op,
    },
    /// Delivery of a message at `pid`.
    Deliver {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The receiving process.
        pid: ProcessId,
        /// The sender.
        from: ProcessId,
        /// The run-unique message id.
        msg_id: MsgId,
        /// The payload.
        msg: &'a A::Msg,
    },
    /// Delivery of a coalesced message batch at `pid`
    /// (see [`Transport::send_batch`](crate::transport::Transport::send_batch)).
    DeliverBatch {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The receiving process.
        pid: ProcessId,
        /// The sender.
        from: ProcessId,
        /// Id of the first message; the batch spans
        /// `first_id..first_id + msgs.len()`.
        first_id: MsgId,
        /// The payloads, in send order.
        msgs: &'a [A::Msg],
    },
    /// A live timer expiry at `pid` (stale expiries are filtered out
    /// before the policy sees the batch).
    Timer {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The process whose timer fires.
        pid: ProcessId,
    },
}

impl<A: Actor> EventView<'_, A> {
    /// The engine's scheduling sequence number — stable event identity
    /// across deterministic replays of the same prefix.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            EventView::Invoke { seq, .. }
            | EventView::Deliver { seq, .. }
            | EventView::DeliverBatch { seq, .. }
            | EventView::Timer { seq, .. } => *seq,
        }
    }

    /// The process at which the event takes place.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        match self {
            EventView::Invoke { pid, .. }
            | EventView::Deliver { pid, .. }
            | EventView::DeliverBatch { pid, .. }
            | EventView::Timer { pid, .. } => *pid,
        }
    }
}

impl<A: Actor> core::fmt::Debug for EventView<'_, A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EventView::Invoke { seq, pid, op } => f
                .debug_struct("Invoke")
                .field("seq", seq)
                .field("pid", pid)
                .field("op", op)
                .finish(),
            EventView::Deliver {
                seq,
                pid,
                from,
                msg_id,
                msg,
            } => f
                .debug_struct("Deliver")
                .field("seq", seq)
                .field("pid", pid)
                .field("from", from)
                .field("msg_id", msg_id)
                .field("msg", msg)
                .finish(),
            EventView::DeliverBatch {
                seq,
                pid,
                from,
                first_id,
                msgs,
            } => f
                .debug_struct("DeliverBatch")
                .field("seq", seq)
                .field("pid", pid)
                .field("from", from)
                .field("first_id", first_id)
                .field("len", &msgs.len())
                .finish(),
            EventView::Timer { seq, pid } => f
                .debug_struct("Timer")
                .field("seq", seq)
                .field("pid", pid)
                .finish(),
        }
    }
}

/// Verdict of a [`SchedulePolicy`] on one batch of same-time events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleDecision {
    /// Process `enabled[i]` next; the rest stay queued.
    Take(usize),
    /// Abandon the whole run; [`Simulation::run_scheduled_with`] returns
    /// [`SimError::PolicyAbort`].
    Abort,
}

/// Chooses which of the events enabled at the current instant runs next.
///
/// [`Simulation::run_scheduled_with`] consults the policy with the batch
/// of *all* queued events sharing the minimal real time, in the engine's
/// default (FIFO schedule) order — index 0 reproduces the default run.
/// This is the replayable hook model-checking explorers drive: choices
/// are deterministic functions of the prefix, so identical choice
/// sequences replay identical runs.
pub trait SchedulePolicy<A: Actor> {
    /// Picks the next event from `enabled` (never empty). Called for
    /// every batch, including singletons, so policies can maintain
    /// bookkeeping over the full event sequence.
    fn choose(&mut self, now: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision;
}

/// The engine's own deterministic order: always take the first enabled
/// event. `run_scheduled_with(&mut FifoPolicy, …)` reproduces `run_with`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl<A: Actor> SchedulePolicy<A> for FifoPolicy {
    fn choose(&mut self, _now: SimTime, _enabled: &[EventView<'_, A>]) -> ScheduleDecision {
        ScheduleDecision::Take(0)
    }
}

/// A discrete-event simulation of `n` processes running actor `A` over
/// delay model `D`.
///
/// # Examples
///
/// A one-process echo system:
///
/// ```
/// use skewbound_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Echo;
/// impl Actor for Echo {
///     type Msg = ();
///     type Op = u32;
///     type Resp = u32;
///     type Timer = ();
///     fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
///         ctx.respond(op + 1);
///     }
///     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
///     fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
/// }
///
/// let bounds = DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(2));
/// let mut sim = Simulation::new(
///     vec![Echo],
///     ClockAssignment::zero(1),
///     FixedDelay::maximal(bounds),
/// );
/// sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 41);
/// sim.run().unwrap();
/// assert_eq!(sim.history().records()[0].resp(), Some(&42));
/// ```
pub struct Simulation<A: Actor, D: DelayModel> {
    nodes: Vec<NodeCore<A>>,
    transport: VirtualTransport<A, D>,
    config: SimConfig,
    started: bool,
    history: History<A::Op, A::Resp>,
    trace: EngineTrace,
}

impl<A: Actor, D: DelayModel> core::fmt::Debug for Simulation<A, D> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.nodes.len())
            .field("now", &self.transport.now)
            .field("queued_events", &self.transport.queue.len())
            .field("ops_recorded", &self.history.len())
            .finish_non_exhaustive()
    }
}

impl<A: Actor, D: DelayModel> Simulation<A, D> {
    /// Creates a simulation. `actors[i]` runs as process `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or its length differs from the clock
    /// assignment's.
    #[must_use]
    pub fn new(actors: Vec<A>, clocks: ClockAssignment, delays: D) -> Self {
        assert!(!actors.is_empty(), "at least one process required");
        assert_eq!(
            actors.len(),
            clocks.len(),
            "clock assignment must cover every process"
        );
        let n = actors.len();
        Simulation {
            nodes: actors
                .into_iter()
                .enumerate()
                .map(|(i, actor)| {
                    NodeCore::new(
                        ProcessId::new(u32::try_from(i).expect("pid fits u32")),
                        n,
                        actor,
                    )
                })
                .collect(),
            transport: VirtualTransport::new(clocks, delays, n),
            config: SimConfig::default(),
            started: false,
            history: History::new(),
            trace: EngineTrace::default(),
        }
    }

    /// Turns on structured event tracing (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.recorder.is_none() {
            self.trace.recorder = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.recorder.as_ref()
    }

    /// Attaches an external [`TraceSink`]; every subsequent engine event
    /// (invoke, send, deliver, timer-set, timer-fire, respond) is emitted
    /// to it, stamped with real time, local clock reading and process id.
    /// Replaces any previously attached sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace.sink = Some(sink);
    }

    /// Detaches and returns the attached [`TraceSink`], if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.sink.take()
    }

    /// Detaches and returns the recorded trace by move, if tracing was
    /// enabled. Subsequent events are no longer recorded (the attached
    /// sink, if any, still receives them).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.recorder.take()
    }

    /// Replaces the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The clock assignment in force.
    #[must_use]
    pub fn clocks(&self) -> &ClockAssignment {
        &self.transport.clocks
    }

    /// Immutable access to the actor running as `pid`.
    #[must_use]
    pub fn actor(&self, pid: ProcessId) -> &A {
        self.nodes[pid.index()].actor()
    }

    /// The history recorded so far.
    #[must_use]
    pub fn history(&self) -> &History<A::Op, A::Resp> {
        &self.history
    }

    /// Consumes the simulation, returning the history by move — the
    /// allocation-free way to keep a finished run's history (grids run
    /// millions of short simulations; cloning the history out was the
    /// largest allocation on that path).
    #[must_use]
    pub fn into_history(self) -> History<A::Op, A::Resp> {
        self.history
    }

    /// Consumes the simulation, returning the history, the final actor
    /// states, and the message log (empty unless
    /// [`Simulation::enable_msg_log`] was called before running) —
    /// everything a checker needs, all by move.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (History<A::Op, A::Resp>, Vec<A>, Vec<MsgEvent>) {
        (
            self.history,
            self.nodes.into_iter().map(NodeCore::into_actor).collect(),
            self.transport.msg_log,
        )
    }

    /// Turns on message-metadata logging: every subsequent send appends
    /// a [`MsgEvent`] to [`Simulation::message_log`]. Off by default —
    /// the log grows with every send, which run-reconstruction and
    /// checkers need but measurement sweeps should not pay for. Call
    /// before running; sends made while disabled are not logged.
    pub fn enable_msg_log(&mut self) {
        self.transport.enable_msg_log();
    }

    /// Metadata of every message sent while logging was enabled (see
    /// [`Simulation::enable_msg_log`]), in send order. Empty when
    /// logging was never enabled.
    #[must_use]
    pub fn message_log(&self) -> &[MsgEvent] {
        &self.transport.msg_log
    }

    /// Reserves room for `additional` further operations in the
    /// history, so large scripted workloads don't regrow it.
    pub fn reserve_ops(&mut self, additional: usize) {
        self.history.reserve(additional);
    }

    /// The delay model — e.g. to inspect an enumerated model's state
    /// after a run (did the run stay within its assignment?).
    #[must_use]
    pub fn delays(&self) -> &D {
        &self.transport.delays
    }

    /// Current simulated real time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.transport.now
    }

    /// Schedules an operation invocation at process `pid` at real time
    /// `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past or `pid` is out of range.
    pub fn schedule_invoke(&mut self, pid: ProcessId, at: SimTime, op: A::Op) {
        assert!(pid.index() < self.n(), "{pid} out of range");
        assert!(
            at >= self.transport.now,
            "cannot schedule an invocation in the past"
        );
        self.transport.push_invoke(pid, at, op);
    }

    /// Runs to quiescence with no closed-loop driver.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        self.run_with(&mut crate::workload::NoDriver)
    }

    /// Runs to quiescence, consulting `driver` for closed-loop workloads:
    /// the driver's initial invocations are scheduled first, and each
    /// response may trigger a follow-up invocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first.
    pub fn run_with<Dr>(&mut self, driver: &mut Dr) -> Result<SimReport, SimError>
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let wall_start = std::time::Instant::now();
        for (pid, at, op) in driver.initial() {
            self.schedule_invoke(pid, at, op);
        }
        self.start_nodes(driver)?;
        let mut events = 0u64;
        while let Some((at, _seq, tag)) = self.transport.queue.pop() {
            events += 1;
            if events > self.config.max_events {
                return Err(SimError::EventCapExceeded {
                    cap: self.config.max_events,
                });
            }
            self.dispatch_event(at, tag, driver)?;
        }
        self.emit_run_counters(events);
        Ok(self.finish_report(events, wall_start))
    }

    /// Runs to quiescence under `policy`, which picks among same-time
    /// events. A convenience for [`Simulation::run_scheduled_with`] with
    /// no driver.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run_scheduled_with`].
    pub fn run_scheduled<P>(&mut self, policy: &mut P) -> Result<SimReport, SimError>
    where
        P: SchedulePolicy<A> + ?Sized,
    {
        self.run_scheduled_with(policy, &mut crate::workload::NoDriver)
    }

    /// Runs to quiescence, consulting `policy` for the order of same-time
    /// events — the replayable scheduler hook for model-checking
    /// explorers.
    ///
    /// At every step, *all* queued events sharing the minimal real time
    /// are collected into a batch (in the engine's deterministic FIFO
    /// order), stale timer expiries are dropped, and the policy picks one
    /// to process; the rest are re-queued unchanged. With [`FifoPolicy`]
    /// this path produces exactly the history [`Simulation::run_with`]
    /// does; the separate hot path in `run_with` exists because grid
    /// sweeps never pay for the batching.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first, or [`SimError::PolicyAbort`] if the policy abandons
    /// the run.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an out-of-range index.
    pub fn run_scheduled_with<P, Dr>(
        &mut self,
        policy: &mut P,
        driver: &mut Dr,
    ) -> Result<SimReport, SimError>
    where
        P: SchedulePolicy<A> + ?Sized,
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let wall_start = std::time::Instant::now();
        for (pid, at, op) in driver.initial() {
            self.schedule_invoke(pid, at, op);
        }
        self.start_nodes(driver)?;
        let mut events = 0u64;
        let mut batch: Vec<(u64, EvTag)> = Vec::new();
        while let Some((at, seq, tag)) = self.transport.queue.pop() {
            batch.clear();
            batch.push((seq, tag));
            while self.transport.queue.next_at() == Some(at) {
                let (_, s, t) = self.transport.queue.pop().expect("peeked");
                batch.push((s, t));
            }
            // The queue pops in (at, seq) order, so the batch is already
            // in the engine's default FIFO order. Stale timer expiries
            // are not schedulable events — drop them (and free their
            // payload slots) before the policy looks.
            {
                let nodes = &self.nodes;
                let transport = &mut self.transport;
                batch.retain(|&(_, tag)| match tag.kind {
                    EvSlot::Timer => {
                        let id = transport.timer_payloads.get(tag.slot).0;
                        if nodes[tag.pid.index()].timers().is_live(id) {
                            true
                        } else {
                            let _ = transport.timer_payloads.take(tag.slot);
                            false
                        }
                    }
                    _ => true,
                });
            }
            if batch.is_empty() {
                continue;
            }
            let chosen = {
                let views: Vec<EventView<'_, A>> = batch
                    .iter()
                    .map(|&(seq, tag)| match tag.kind {
                        EvSlot::Invoke => EventView::Invoke {
                            seq,
                            pid: tag.pid,
                            op: self.transport.ops.get(tag.slot),
                        },
                        EvSlot::Deliver => {
                            let p = self.transport.msgs.get(tag.slot);
                            EventView::Deliver {
                                seq,
                                pid: tag.pid,
                                from: p.from,
                                msg_id: p.id,
                                msg: &p.msg,
                            }
                        }
                        EvSlot::DeliverBatch => {
                            let p = self.transport.batches.get(tag.slot);
                            EventView::DeliverBatch {
                                seq,
                                pid: tag.pid,
                                from: p.from,
                                first_id: p.first_id,
                                msgs: &p.msgs,
                            }
                        }
                        EvSlot::Timer => EventView::Timer { seq, pid: tag.pid },
                    })
                    .collect();
                match policy.choose(at, &views) {
                    ScheduleDecision::Take(i) => {
                        assert!(
                            i < batch.len(),
                            "schedule policy chose event {i} of {}",
                            batch.len()
                        );
                        i
                    }
                    ScheduleDecision::Abort => return Err(SimError::PolicyAbort),
                }
            };
            let (_, chosen_tag) = batch.remove(chosen);
            for (s, t) in batch.drain(..) {
                self.transport.queue.push(at, s, t);
            }
            events += 1;
            if events > self.config.max_events {
                return Err(SimError::EventCapExceeded {
                    cap: self.config.max_events,
                });
            }
            self.dispatch_event(at, chosen_tag, driver)?;
        }
        self.emit_run_counters(events);
        Ok(self.finish_report(events, wall_start))
    }

    /// Builds the end-of-run report and performs the payload-leak check:
    /// the event queue is empty here, so every invoke/message/batch/timer
    /// payload must have been taken out of its arena.
    fn finish_report(&self, events: u64, wall_start: std::time::Instant) -> SimReport {
        let leaked = self.transport.live_payloads();
        debug_assert_eq!(
            leaked, 0,
            "event queue drained but {leaked} payload slab slot(s) still live"
        );
        SimReport {
            events,
            end_time: self.transport.now,
            wall_nanos: u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            peak_rss_bytes: 0,
            leaked_payloads: leaked as u64,
        }
    }

    /// Runs every node's `on_start` hook once, at the start of the first
    /// run call.
    fn start_nodes<Dr>(&mut self, driver: &mut Dr) -> Result<(), SimError>
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        if self.started {
            return Ok(());
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let pid = self.nodes[i].pid();
            let stamp = self.stamp(pid);
            let act = self.nodes[i].on_start(
                stamp,
                &mut self.transport,
                &mut self.trace,
                &mut self.history,
            )?;
            self.after_activation(pid, act, driver);
        }
        Ok(())
    }

    /// The (real time, local clock) stamp of an activation at `pid` at
    /// the current instant.
    fn stamp(&self, pid: ProcessId) -> Stamp {
        Stamp {
            now: self.transport.now,
            clock: self.transport.clocks.clock_at(pid, self.transport.now),
        }
    }

    fn emit_run_counters(&mut self, events: u64) {
        if let Some(sink) = self.trace.sink.as_deref_mut() {
            sink.counter("engine", "events", events);
            sink.counter("engine", "messages", self.transport.next_msg_id);
            // Zero on every honest run; the offline trace auditor turns a
            // nonzero reading into an SB105 payload-leak diagnostic.
            sink.counter(
                "engine",
                "leaked_payloads",
                self.transport.live_payloads() as u64,
            );
        }
    }

    /// Advances time to the event, takes its payload out of the slabs
    /// and activates the node core. Stale timer expiries (cancelled
    /// after queueing) are dropped silently by the node's slab
    /// generation check.
    #[inline]
    fn dispatch_event<Dr>(
        &mut self,
        at: SimTime,
        tag: EvTag,
        driver: &mut Dr,
    ) -> Result<(), SimError>
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        debug_assert!(at >= self.transport.now, "time went backwards");
        self.transport.now = at;
        let pid = tag.pid;
        let stamp = self.stamp(pid);
        let kind = self.transport.resolve(tag);
        let node = &mut self.nodes[pid.index()];
        let act = match kind {
            EventKind::Invoke { op } => node.on_invoke(
                stamp,
                op,
                &mut self.transport,
                &mut self.trace,
                &mut self.history,
            ),
            EventKind::Deliver { from, msg, msg_id } => node.on_message(
                stamp,
                from,
                msg_id,
                msg,
                &mut self.transport,
                &mut self.trace,
                &mut self.history,
            ),
            EventKind::DeliverBatch {
                from,
                first_id,
                msgs,
            } => node.on_message_batch(
                stamp,
                from,
                first_id,
                msgs,
                &mut self.transport,
                &mut self.trace,
                &mut self.history,
            ),
            EventKind::Timer { id, timer } => node.on_timer(
                stamp,
                id,
                timer,
                &mut self.transport,
                &mut self.trace,
                &mut self.history,
            ),
        }?;
        self.after_activation(pid, act, driver);
        Ok(())
    }

    /// If the activation completed an operation, consults the driver for
    /// the follow-up invocation of the closed loop. The operation and
    /// response are borrowed from the history — no per-response clones
    /// on the hot path.
    fn after_activation<Dr>(&mut self, pid: ProcessId, act: Activation, driver: &mut Dr)
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let Activation::Completed(op_id) = act else {
            return;
        };
        let rec = self.history.get(op_id).expect("recorded at invocation");
        let resp = rec.resp().expect("completed activations have a response");
        if let Some((gap, next_op)) = driver.next(pid, &rec.op, resp, self.transport.now) {
            let at = self.transport.now + gap;
            self.transport.push_invoke(pid, at, next_op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Context;
    use crate::delay::{DelayBounds, FixedDelay};
    use crate::time::SimDuration;

    /// Ping-pong: an invocation at p0 sends to p1, which echoes back; p0
    /// then responds with the round-trip count.
    #[derive(Debug, Default)]
    struct PingPong {
        hops: u32,
    }

    impl Actor for PingPong {
        type Msg = u32;
        type Op = ();
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            ctx.send(ProcessId::new(1), 0);
        }

        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Context<'_, Self>) {
            self.hops += 1;
            if ctx.pid() == ProcessId::new(1) {
                ctx.send(from, msg + 1);
            } else {
                ctx.respond(msg + 1);
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {}
    }

    fn bounds() -> DelayBounds {
        DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(4))
    }

    #[test]
    fn ping_pong_round_trip_takes_two_delays() {
        let mut sim = Simulation::new(
            vec![PingPong::default(), PingPong::default()],
            ClockAssignment::zero(2),
            FixedDelay::maximal(bounds()),
        );
        sim.enable_msg_log();
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        let report = sim.run().unwrap();
        assert!(sim.history().is_complete());
        let rec = &sim.history().records()[0];
        assert_eq!(rec.resp(), Some(&2));
        // Round trip at delay d = 10 each way.
        assert_eq!(rec.latency().unwrap().as_ticks(), 20);
        assert_eq!(report.end_time, SimTime::from_ticks(20));
        assert_eq!(sim.message_log().len(), 2);
        assert_eq!(sim.message_log()[0].delay.as_ticks(), 10);
    }

    /// An actor that responds via a timer after a fixed local delay.
    #[derive(Debug)]
    struct DelayedResponder {
        wait: SimDuration,
    }

    impl Actor for DelayedResponder {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = u32;

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            ctx.set_timer(self.wait, op);
        }

        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}

        fn on_timer(&mut self, timer: u32, ctx: &mut Context<'_, Self>) {
            ctx.respond(timer * 10);
        }
    }

    #[test]
    fn timer_drives_response_latency() {
        let mut sim = Simulation::new(
            vec![DelayedResponder {
                wait: SimDuration::from_ticks(7),
            }],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(3), 5);
        sim.run().unwrap();
        let rec = &sim.history().records()[0];
        assert_eq!(rec.resp(), Some(&50));
        assert_eq!(rec.invoked_at, SimTime::from_ticks(3));
        assert_eq!(rec.responded_at(), Some(SimTime::from_ticks(10)));
    }

    /// An actor that cancels its own first timer; only the second fires.
    #[derive(Debug, Default)]
    struct Canceller {
        fired: Vec<u32>,
    }

    impl Actor for Canceller {
        type Msg = ();
        type Op = ();
        type Resp = ();
        type Timer = u32;

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            let first = ctx.set_timer(SimDuration::from_ticks(5), 1);
            ctx.set_timer(SimDuration::from_ticks(6), 2);
            ctx.cancel_timer(first);
        }

        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}

        fn on_timer(&mut self, timer: u32, ctx: &mut Context<'_, Self>) {
            self.fired.push(timer);
            if timer == 2 {
                ctx.respond(());
            }
        }
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = Simulation::new(
            vec![Canceller::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).fired, vec![2]);
    }

    #[test]
    fn clock_offsets_visible_to_actors() {
        #[derive(Debug, Default)]
        struct ClockReader {
            read: Option<i64>,
        }
        impl Actor for ClockReader {
            type Msg = ();
            type Op = ();
            type Resp = ();
            type Timer = ();
            fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
                self.read = Some(ctx.clock().as_ticks());
                ctx.respond(());
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
            fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
        }

        let clocks = ClockAssignment::single_late(2, ProcessId::new(1), SimDuration::from_ticks(4));
        let mut sim = Simulation::new(
            vec![ClockReader::default(), ClockReader::default()],
            clocks,
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(10), ());
        sim.schedule_invoke(ProcessId::new(1), SimTime::from_ticks(10), ());
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).read, Some(10));
        assert_eq!(sim.actor(ProcessId::new(1)).read, Some(6));
    }

    #[test]
    #[should_panic(expected = "another operation is pending")]
    fn overlapping_invocations_rejected() {
        let mut sim = Simulation::new(
            vec![DelayedResponder {
                wait: SimDuration::from_ticks(100),
            }],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(1), 2);
        let _ = sim.run();
    }

    #[test]
    fn event_cap_reported() {
        #[derive(Debug)]
        struct Looper;
        impl Actor for Looper {
            type Msg = ();
            type Op = ();
            type Resp = ();
            type Timer = ();
            fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
                ctx.set_timer(SimDuration::from_ticks(1), ());
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
            fn on_timer(&mut self, _: (), ctx: &mut Context<'_, Self>) {
                ctx.set_timer(SimDuration::from_ticks(1), ());
            }
        }
        let mut sim = Simulation::new(
            vec![Looper],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        )
        .with_config(SimConfig { max_events: 100 });
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        assert_eq!(sim.run(), Err(SimError::EventCapExceeded { cap: 100 }));
    }

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<u32>,
    }
    impl Actor for Recorder {
        type Msg = ();
        type Op = u32;
        type Resp = ();
        type Timer = ();
        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            self.seen.push(op);
            ctx.respond(());
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
    }

    #[test]
    fn same_time_events_fifo_by_schedule_order() {
        // Two invocations at the same instant on the same process would
        // violate the pending-op rule, so use the response to sequence:
        // each invocation completes instantly, so both run at t=5 in
        // schedule order.
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 2);
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).seen, vec![1, 2]);
    }

    #[test]
    fn scheduled_fifo_reproduces_the_default_run() {
        let build = || {
            let mut sim = Simulation::new(
                vec![PingPong::default(), PingPong::default()],
                ClockAssignment::zero(2),
                FixedDelay::maximal(bounds()),
            );
            sim.enable_msg_log();
            sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
            sim
        };
        let mut plain = build();
        let plain_report = plain.run().unwrap();
        let mut hooked = build();
        let hooked_report = hooked.run_scheduled(&mut FifoPolicy).unwrap();
        assert_eq!(plain_report, hooked_report);
        assert_eq!(plain.message_log(), hooked.message_log());
        assert_eq!(
            plain.history().records()[0].resp(),
            hooked.history().records()[0].resp()
        );
    }

    #[test]
    fn policy_reorders_same_time_events() {
        struct TakeLast;
        impl<A: Actor> SchedulePolicy<A> for TakeLast {
            fn choose(&mut self, _: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
                ScheduleDecision::Take(enabled.len() - 1)
            }
        }
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 2);
        sim.run_scheduled(&mut TakeLast).unwrap();
        assert_eq!(
            sim.actor(ProcessId::new(0)).seen,
            vec![2, 1],
            "the policy must be able to invert the default order"
        );
    }

    #[test]
    fn policy_abort_surfaces_as_error() {
        struct AbortAll;
        impl<A: Actor> SchedulePolicy<A> for AbortAll {
            fn choose(&mut self, _: SimTime, _: &[EventView<'_, A>]) -> ScheduleDecision {
                ScheduleDecision::Abort
            }
        }
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 1);
        assert_eq!(sim.run_scheduled(&mut AbortAll), Err(SimError::PolicyAbort));
    }

    #[test]
    fn scheduled_run_filters_stale_timer_batches() {
        // The canceller's first timer is cancelled at set time; when its
        // expiry would pop, the scheduled path must not present it as a
        // choice.
        struct CountBatches {
            multi: u32,
        }
        impl<A: Actor> SchedulePolicy<A> for CountBatches {
            fn choose(&mut self, _: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
                if enabled.len() > 1 {
                    self.multi += 1;
                }
                ScheduleDecision::Take(0)
            }
        }
        let mut sim = Simulation::new(
            vec![Canceller::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        let mut policy = CountBatches { multi: 0 };
        sim.run_scheduled(&mut policy).unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).fired, vec![2]);
        assert_eq!(policy.multi, 0, "no batch should contain the stale expiry");
    }

    #[test]
    fn into_parts_returns_history_actors_and_log() {
        let mut sim = Simulation::new(
            vec![PingPong::default(), PingPong::default()],
            ClockAssignment::zero(2),
            FixedDelay::maximal(bounds()),
        );
        sim.enable_msg_log();
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        sim.run().unwrap();
        let log_len = sim.message_log().len();
        assert_eq!(log_len, 2, "logging was enabled, so sends were recorded");
        let (history, actors, log) = sim.into_parts();
        assert!(history.is_complete());
        assert_eq!(actors.len(), 2);
        assert_eq!(actors[0].hops + actors[1].hops, 2);
        assert_eq!(log.len(), log_len);
    }
}
