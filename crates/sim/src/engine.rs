//! The deterministic discrete-event engine.
//!
//! Executes a set of [`Actor`]s under a [`ClockAssignment`] and a
//! [`DelayModel`], producing a complete [`History`] plus a message log.
//! Identical inputs (actors, clocks, delay model, schedule, driver) always
//! produce identical runs: events at equal real times are processed in
//! schedule order, and all randomness lives in seeded delay models and
//! workloads.
//!
//! The engine enforces the model of Chapter III:
//!
//! * at most one pending operation per process;
//! * every message delay within `[d − u, d]` (the delay model is
//!   re-validated on every send);
//! * local processing takes zero time;
//! * clocks are fixed offsets from real time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::actor::{Actor, Context, Effects};
use crate::clock::ClockAssignment;
use crate::delay::{DelayModel, MsgMeta};
use crate::history::History;
use crate::ids::{MsgId, OpId, ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::timers::TimerSlab;
use crate::trace::{Trace, TraceEvent, TraceEventKind, TraceSink};
use crate::workload::Driver;

/// Engine limits and switches.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Abort the run after this many processed events (guards against
    /// actors that set timers forever).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 10_000_000,
        }
    }
}

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event cap was reached before quiescence.
    EventCapExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// A [`SchedulePolicy`] abandoned the run
    /// ([`ScheduleDecision::Abort`]) — e.g. a model-checking explorer
    /// proved the remaining branch redundant.
    PolicyAbort,
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::EventCapExceeded { cap } => {
                write!(f, "event cap of {cap} events exceeded before quiescence")
            }
            SimError::PolicyAbort => write!(f, "the schedule policy abandoned the run"),
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a finished run.
///
/// Equality ignores [`SimReport::wall_nanos`]: two runs of the same
/// scenario are "the same run" when they process the same events to the
/// same simulated end time, regardless of how fast the host executed
/// them. This is what lets determinism tests compare reports across
/// sequential and parallel sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Number of events processed.
    pub events: u64,
    /// Real time of the last processed event.
    pub end_time: SimTime,
    /// Host wall-clock time the run took, in nanoseconds.
    pub wall_nanos: u64,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events && self.end_time == other.end_time
    }
}

impl Eq for SimReport {}

impl SimReport {
    /// Simulation throughput in events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let per_nano = self.events as f64 / self.wall_nanos as f64;
        per_nano * 1e9
    }
}

/// Metadata of one message transmission (payload omitted).
///
/// This is the raw material from which the `shift` crate reconstructs
/// runs-as-data for admissibility checking and chopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgEvent {
    /// Run-unique message id.
    pub id: MsgId,
    /// Sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// Real send time.
    pub sent_at: SimTime,
    /// Assigned delay.
    pub delay: SimDuration,
    /// Real delivery time (`sent_at + delay`).
    pub recv_at: SimTime,
}

enum EventKind<A: Actor> {
    Invoke {
        op: A::Op,
    },
    Deliver {
        from: ProcessId,
        msg: A::Msg,
        msg_id: MsgId,
    },
    Timer {
        id: TimerId,
        timer: A::Timer,
    },
}

/// Read-only view of one schedulable event, as presented to a
/// [`SchedulePolicy`] by [`Simulation::run_scheduled_with`].
///
/// The `seq` field is the engine's internal scheduling sequence number:
/// it identifies the *same* event across deterministic replays of the
/// same choice prefix (the basis for sleep-set bookkeeping in explorers).
pub enum EventView<'a, A: Actor> {
    /// An operation invocation at `pid`.
    Invoke {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The invoked process.
        pid: ProcessId,
        /// The operation being invoked.
        op: &'a A::Op,
    },
    /// Delivery of a message at `pid`.
    Deliver {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The receiving process.
        pid: ProcessId,
        /// The sender.
        from: ProcessId,
        /// The run-unique message id.
        msg_id: MsgId,
        /// The payload.
        msg: &'a A::Msg,
    },
    /// A live timer expiry at `pid` (stale expiries are filtered out
    /// before the policy sees the batch).
    Timer {
        /// Stable event identity within a deterministic replay.
        seq: u64,
        /// The process whose timer fires.
        pid: ProcessId,
    },
}

impl<A: Actor> EventView<'_, A> {
    /// The engine's scheduling sequence number — stable event identity
    /// across deterministic replays of the same prefix.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            EventView::Invoke { seq, .. }
            | EventView::Deliver { seq, .. }
            | EventView::Timer { seq, .. } => *seq,
        }
    }

    /// The process at which the event takes place.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        match self {
            EventView::Invoke { pid, .. }
            | EventView::Deliver { pid, .. }
            | EventView::Timer { pid, .. } => *pid,
        }
    }
}

impl<A: Actor> core::fmt::Debug for EventView<'_, A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EventView::Invoke { seq, pid, op } => f
                .debug_struct("Invoke")
                .field("seq", seq)
                .field("pid", pid)
                .field("op", op)
                .finish(),
            EventView::Deliver {
                seq,
                pid,
                from,
                msg_id,
                msg,
            } => f
                .debug_struct("Deliver")
                .field("seq", seq)
                .field("pid", pid)
                .field("from", from)
                .field("msg_id", msg_id)
                .field("msg", msg)
                .finish(),
            EventView::Timer { seq, pid } => f
                .debug_struct("Timer")
                .field("seq", seq)
                .field("pid", pid)
                .finish(),
        }
    }
}

/// Verdict of a [`SchedulePolicy`] on one batch of same-time events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleDecision {
    /// Process `enabled[i]` next; the rest stay queued.
    Take(usize),
    /// Abandon the whole run; [`Simulation::run_scheduled_with`] returns
    /// [`SimError::PolicyAbort`].
    Abort,
}

/// Chooses which of the events enabled at the current instant runs next.
///
/// [`Simulation::run_scheduled_with`] consults the policy with the batch
/// of *all* queued events sharing the minimal real time, in the engine's
/// default (FIFO schedule) order — index 0 reproduces the default run.
/// This is the replayable hook model-checking explorers drive: choices
/// are deterministic functions of the prefix, so identical choice
/// sequences replay identical runs.
pub trait SchedulePolicy<A: Actor> {
    /// Picks the next event from `enabled` (never empty). Called for
    /// every batch, including singletons, so policies can maintain
    /// bookkeeping over the full event sequence.
    fn choose(&mut self, now: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision;
}

/// The engine's own deterministic order: always take the first enabled
/// event. `run_scheduled_with(&mut FifoPolicy, …)` reproduces `run_with`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl<A: Actor> SchedulePolicy<A> for FifoPolicy {
    fn choose(&mut self, _now: SimTime, _enabled: &[EventView<'_, A>]) -> ScheduleDecision {
        ScheduleDecision::Take(0)
    }
}

struct Scheduled<A: Actor> {
    at: SimTime,
    seq: u64,
    pid: ProcessId,
    kind: EventKind<A>,
}

impl<A: Actor> PartialEq for Scheduled<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<A: Actor> Eq for Scheduled<A> {}

impl<A: Actor> PartialOrd for Scheduled<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<A: Actor> Ord for Scheduled<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulation of `n` processes running actor `A` over
/// delay model `D`.
///
/// # Examples
///
/// A one-process echo system:
///
/// ```
/// use skewbound_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Echo;
/// impl Actor for Echo {
///     type Msg = ();
///     type Op = u32;
///     type Resp = u32;
///     type Timer = ();
///     fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
///         ctx.respond(op + 1);
///     }
///     fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
///     fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
/// }
///
/// let bounds = DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(2));
/// let mut sim = Simulation::new(
///     vec![Echo],
///     ClockAssignment::zero(1),
///     FixedDelay::maximal(bounds),
/// );
/// sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 41);
/// sim.run().unwrap();
/// assert_eq!(sim.history().records()[0].resp(), Some(&42));
/// ```
pub struct Simulation<A: Actor, D: DelayModel> {
    actors: Vec<A>,
    clocks: ClockAssignment,
    delays: D,
    config: SimConfig,
    queue: BinaryHeap<Scheduled<A>>,
    seq: u64,
    now: SimTime,
    started: bool,
    /// Timer liveness: a generation-stamped slab instead of hash sets —
    /// set/cancel/expiry are all O(1) integer compares (see
    /// [`crate::timers`]).
    timers: TimerSlab,
    pending_op: Vec<Option<OpId>>,
    /// Per ordered pair `(from, to)` send counters, flattened to
    /// `from * n + to` (grids run millions of short simulations; a flat
    /// vector beats a hash map in the send hot path).
    pair_seq: Vec<u64>,
    next_msg_id: u64,
    history: History<A::Op, A::Resp>,
    msg_log: Vec<MsgEvent>,
    trace: Option<Trace>,
    /// External structured-trace consumer. Hook sites check both this
    /// and `trace` before building an event, so with neither attached
    /// the hot path does two `is_some` tests and nothing else.
    sink: Option<Box<dyn TraceSink>>,
}

impl<A: Actor, D: DelayModel> core::fmt::Debug for Simulation<A, D> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.actors.len())
            .field("now", &self.now)
            .field("queued_events", &self.queue.len())
            .field("ops_recorded", &self.history.len())
            .finish_non_exhaustive()
    }
}

impl<A: Actor, D: DelayModel> Simulation<A, D> {
    /// Creates a simulation. `actors[i]` runs as process `p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `actors` is empty or its length differs from the clock
    /// assignment's.
    #[must_use]
    pub fn new(actors: Vec<A>, clocks: ClockAssignment, delays: D) -> Self {
        assert!(!actors.is_empty(), "at least one process required");
        assert_eq!(
            actors.len(),
            clocks.len(),
            "clock assignment must cover every process"
        );
        let n = actors.len();
        Simulation {
            actors,
            clocks,
            delays,
            config: SimConfig::default(),
            // Pre-size the hot collections: a typical grid cell schedules
            // a handful of events per process at any instant, and every
            // broadcast appends n − 1 log entries.
            queue: BinaryHeap::with_capacity(8 * n + 16),
            seq: 0,
            now: SimTime::ZERO,
            started: false,
            timers: TimerSlab::with_capacity(2 * n),
            pending_op: vec![None; n],
            pair_seq: vec![0; n * n],
            next_msg_id: 0,
            history: History::new(),
            msg_log: Vec::with_capacity(16 * n),
            trace: None,
            sink: None,
        }
    }

    /// Turns on structured event tracing (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches an external [`TraceSink`]; every subsequent engine event
    /// (invoke, send, deliver, timer-set, timer-fire, respond) is emitted
    /// to it, stamped with real time, local clock reading and process id.
    /// Replaces any previously attached sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the attached [`TraceSink`], if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// `true` when some trace consumer (recorder or sink) is attached.
    /// Hook sites gate on this so the disabled path allocates nothing.
    #[inline]
    fn tracing(&self) -> bool {
        self.trace.is_some() || self.sink.is_some()
    }

    /// Builds one stamped event and delivers it to the attached
    /// consumers. Only called from inside a [`Simulation::tracing`]
    /// guard — the event (and its `Debug`-rendered payload) must not be
    /// constructed on the disabled path.
    fn emit_trace(&mut self, pid: ProcessId, kind: TraceEventKind) {
        let event = TraceEvent {
            at: self.now,
            clock: self.clocks.clock_at(pid, self.now),
            pid,
            kind,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.event(&event);
        }
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    /// Replaces the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// The clock assignment in force.
    #[must_use]
    pub fn clocks(&self) -> &ClockAssignment {
        &self.clocks
    }

    /// Immutable access to the actor running as `pid`.
    #[must_use]
    pub fn actor(&self, pid: ProcessId) -> &A {
        &self.actors[pid.index()]
    }

    /// The history recorded so far.
    #[must_use]
    pub fn history(&self) -> &History<A::Op, A::Resp> {
        &self.history
    }

    /// Metadata of every message sent so far, in send order.
    #[must_use]
    pub fn message_log(&self) -> &[MsgEvent] {
        &self.msg_log
    }

    /// The delay model — e.g. to inspect an enumerated model's state
    /// after a run (did the run stay within its assignment?).
    #[must_use]
    pub fn delays(&self) -> &D {
        &self.delays
    }

    /// Current simulated real time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an operation invocation at process `pid` at real time
    /// `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past or `pid` is out of range.
    pub fn schedule_invoke(&mut self, pid: ProcessId, at: SimTime, op: A::Op) {
        assert!(pid.index() < self.n(), "{pid} out of range");
        assert!(at >= self.now, "cannot schedule an invocation in the past");
        let seq = self.bump_seq();
        self.queue.push(Scheduled {
            at,
            seq,
            pid,
            kind: EventKind::Invoke { op },
        });
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Runs to quiescence with no closed-loop driver.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        self.run_with(&mut crate::workload::NoDriver)
    }

    /// Runs to quiescence, consulting `driver` for closed-loop workloads:
    /// the driver's initial invocations are scheduled first, and each
    /// response may trigger a follow-up invocation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first.
    pub fn run_with<Dr>(&mut self, driver: &mut Dr) -> Result<SimReport, SimError>
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let wall_start = std::time::Instant::now();
        let initial = driver.initial();
        self.queue.reserve(initial.len());
        for (pid, at, op) in initial {
            self.schedule_invoke(pid, at, op);
        }
        if !self.started {
            self.started = true;
            for pid in ProcessId::all(self.n()) {
                self.activate(pid, |actor, ctx| actor.on_start(ctx), driver);
            }
        }
        let mut events = 0u64;
        while let Some(ev) = self.queue.pop() {
            events += 1;
            if events > self.config.max_events {
                return Err(SimError::EventCapExceeded {
                    cap: self.config.max_events,
                });
            }
            self.dispatch_event(ev, driver);
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.counter("engine", "events", events);
            sink.counter("engine", "messages", self.next_msg_id);
        }
        Ok(SimReport {
            events,
            end_time: self.now,
            wall_nanos: u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        })
    }

    /// Runs to quiescence under `policy`, which picks among same-time
    /// events. A convenience for [`Simulation::run_scheduled_with`] with
    /// no driver.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::run_scheduled_with`].
    pub fn run_scheduled<P>(&mut self, policy: &mut P) -> Result<SimReport, SimError>
    where
        P: SchedulePolicy<A> + ?Sized,
    {
        self.run_scheduled_with(policy, &mut crate::workload::NoDriver)
    }

    /// Runs to quiescence, consulting `policy` for the order of same-time
    /// events — the replayable scheduler hook for model-checking
    /// explorers.
    ///
    /// At every step, *all* queued events sharing the minimal real time
    /// are collected into a batch (in the engine's deterministic FIFO
    /// order), stale timer expiries are dropped, and the policy picks one
    /// to process; the rest are re-queued unchanged. With [`FifoPolicy`]
    /// this path produces exactly the history [`Simulation::run_with`]
    /// does; the separate hot path in `run_with` exists because grid
    /// sweeps never pay for the batching.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventCapExceeded`] if the configured event cap
    /// is hit first, or [`SimError::PolicyAbort`] if the policy abandons
    /// the run.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an out-of-range index.
    pub fn run_scheduled_with<P, Dr>(
        &mut self,
        policy: &mut P,
        driver: &mut Dr,
    ) -> Result<SimReport, SimError>
    where
        P: SchedulePolicy<A> + ?Sized,
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let wall_start = std::time::Instant::now();
        let initial = driver.initial();
        self.queue.reserve(initial.len());
        for (pid, at, op) in initial {
            self.schedule_invoke(pid, at, op);
        }
        if !self.started {
            self.started = true;
            for pid in ProcessId::all(self.n()) {
                self.activate(pid, |actor, ctx| actor.on_start(ctx), driver);
            }
        }
        let mut events = 0u64;
        let mut batch: Vec<Scheduled<A>> = Vec::new();
        while let Some(first) = self.queue.pop() {
            let at = first.at;
            batch.clear();
            batch.push(first);
            while self.queue.peek().is_some_and(|next| next.at == at) {
                batch.push(self.queue.pop().expect("peeked"));
            }
            // The heap pops in (at, seq) order, so the batch is already in
            // the engine's default FIFO order. Stale timer expiries are
            // not schedulable events — drop them before the policy looks.
            let timers = &self.timers;
            batch.retain(|ev| match &ev.kind {
                EventKind::Timer { id, .. } => timers.is_live(*id),
                _ => true,
            });
            if batch.is_empty() {
                continue;
            }
            let chosen = {
                let views: Vec<EventView<'_, A>> = batch
                    .iter()
                    .map(|ev| match &ev.kind {
                        EventKind::Invoke { op } => EventView::Invoke {
                            seq: ev.seq,
                            pid: ev.pid,
                            op,
                        },
                        EventKind::Deliver { from, msg, msg_id } => EventView::Deliver {
                            seq: ev.seq,
                            pid: ev.pid,
                            from: *from,
                            msg_id: *msg_id,
                            msg,
                        },
                        EventKind::Timer { .. } => EventView::Timer {
                            seq: ev.seq,
                            pid: ev.pid,
                        },
                    })
                    .collect();
                match policy.choose(at, &views) {
                    ScheduleDecision::Take(i) => {
                        assert!(
                            i < batch.len(),
                            "schedule policy chose event {i} of {}",
                            batch.len()
                        );
                        i
                    }
                    ScheduleDecision::Abort => return Err(SimError::PolicyAbort),
                }
            };
            let ev = batch.remove(chosen);
            for rest in batch.drain(..) {
                self.queue.push(rest);
            }
            events += 1;
            if events > self.config.max_events {
                return Err(SimError::EventCapExceeded {
                    cap: self.config.max_events,
                });
            }
            self.dispatch_event(ev, driver);
        }
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.counter("engine", "events", events);
            sink.counter("engine", "messages", self.next_msg_id);
        }
        Ok(SimReport {
            events,
            end_time: self.now,
            wall_nanos: u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        })
    }

    /// Advances time to the event and runs the actor handler. Stale timer
    /// expiries (cancelled after queueing) are dropped silently.
    #[inline]
    fn dispatch_event<Dr>(&mut self, ev: Scheduled<A>, driver: &mut Dr)
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        let pid = ev.pid;
        match ev.kind {
            EventKind::Invoke { op } => {
                assert!(
                    self.pending_op[pid.index()].is_none(),
                    "{pid}: invocation while another operation is pending \
                     (the application layer allows one pending operation per process)"
                );
                if self.tracing() {
                    self.emit_trace(
                        pid,
                        TraceEventKind::Invoke {
                            op: format!("{op:?}"),
                        },
                    );
                }
                let op_id = self.history.record_invoke(pid, op.clone(), self.now);
                self.pending_op[pid.index()] = Some(op_id);
                self.activate(pid, |actor, ctx| actor.on_invoke(op, ctx), driver);
            }
            EventKind::Deliver { from, msg, msg_id } => {
                if self.tracing() {
                    self.emit_trace(pid, TraceEventKind::Recv { from, msg: msg_id });
                }
                self.activate(pid, |actor, ctx| actor.on_message(from, msg, ctx), driver);
            }
            EventKind::Timer { id, timer } => {
                // A stale generation means the timer was cancelled
                // after this expiry event was queued.
                if !self.timers.fire(id) {
                    return;
                }
                if self.tracing() {
                    self.emit_trace(
                        pid,
                        TraceEventKind::Timer {
                            tag: format!("{timer:?}"),
                        },
                    );
                }
                self.activate(pid, |actor, ctx| actor.on_timer(timer, ctx), driver);
            }
        }
    }

    /// Runs one actor handler and applies its effects.
    fn activate<F, Dr>(&mut self, pid: ProcessId, f: F, driver: &mut Dr)
    where
        F: FnOnce(&mut A, &mut Context<'_, A>),
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let n = self.n();
        let clock = self.clocks.clock_at(pid, self.now);
        let mut effects = Effects::new();
        {
            let mut ctx = Context::new(pid, n, clock, &mut self.timers, &mut effects);
            f(&mut self.actors[pid.index()], &mut ctx);
        }
        self.apply_effects(pid, effects, driver);
    }

    fn apply_effects<Dr>(&mut self, pid: ProcessId, effects: Effects<A>, driver: &mut Dr)
    where
        Dr: Driver<A::Op, A::Resp> + ?Sized,
    {
        let Effects {
            sends,
            timers,
            cancels,
            response,
        } = effects;

        let n = self.n();
        for (to, msg) in sends {
            let pair_seq = &mut self.pair_seq[pid.index() * n + to.index()];
            let this_seq = *pair_seq;
            *pair_seq += 1;
            let meta = MsgMeta {
                from: pid,
                to,
                sent_at: self.now,
                pair_seq: this_seq,
            };
            let delay = self.delays.delay(meta);
            let bounds = self.delays.bounds();
            assert!(
                bounds.contains(delay),
                "delay model produced inadmissible delay {delay:?} for {pid}->{to} \
                 (bounds [{:?}, {:?}])",
                bounds.min(),
                bounds.max()
            );
            let recv_at = self.now + delay;
            let id = MsgId::new(self.next_msg_id);
            self.next_msg_id += 1;
            self.msg_log.push(MsgEvent {
                id,
                from: pid,
                to,
                sent_at: self.now,
                delay,
                recv_at,
            });
            if self.tracing() {
                self.emit_trace(
                    pid,
                    TraceEventKind::Send {
                        to,
                        msg: id,
                        payload: format!("{msg:?}"),
                    },
                );
            }
            let seq = self.bump_seq();
            self.queue.push(Scheduled {
                at: recv_at,
                seq,
                pid: to,
                kind: EventKind::Deliver {
                    from: pid,
                    msg,
                    msg_id: id,
                },
            });
        }

        for (id, delay, timer) in timers {
            // Already allocated live in the slab by `Context::set_timer`.
            let seq = self.bump_seq();
            // Timer delays are in clock units; under drift (a non-unit
            // clock rate) convert to real time.
            let real_delay = self.clocks.clock_to_real(pid, delay);
            if self.tracing() {
                self.emit_trace(
                    pid,
                    TraceEventKind::TimerSet {
                        tag: format!("{timer:?}"),
                        delay,
                    },
                );
            }
            self.queue.push(Scheduled {
                at: self.now + real_delay,
                seq,
                pid,
                kind: EventKind::Timer { id, timer },
            });
        }

        for id in cancels {
            self.timers.cancel(id);
        }

        if let Some(resp) = response {
            let op_id = self.pending_op[pid.index()]
                .take()
                .unwrap_or_else(|| panic!("{pid}: response with no pending operation"));
            if self.tracing() {
                self.emit_trace(
                    pid,
                    TraceEventKind::Respond {
                        resp: format!("{resp:?}"),
                    },
                );
            }
            // Consult the driver before committing the response so the op
            // can be borrowed from the history and the response moved into
            // it — no per-response clones on the hot path.
            let rec = self.history.get(op_id).expect("recorded at invocation");
            let next = driver.next(pid, &rec.op, &resp, self.now);
            self.history.record_response(op_id, resp, self.now);
            if let Some((gap, next_op)) = next {
                let at = self.now + gap;
                let seq = self.bump_seq();
                self.queue.push(Scheduled {
                    at,
                    seq,
                    pid,
                    kind: EventKind::Invoke { op: next_op },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{DelayBounds, FixedDelay};
    use crate::time::SimDuration;

    /// Ping-pong: an invocation at p0 sends to p1, which echoes back; p0
    /// then responds with the round-trip count.
    #[derive(Debug, Default)]
    struct PingPong {
        hops: u32,
    }

    impl Actor for PingPong {
        type Msg = u32;
        type Op = ();
        type Resp = u32;
        type Timer = ();

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            ctx.send(ProcessId::new(1), 0);
        }

        fn on_message(&mut self, from: ProcessId, msg: u32, ctx: &mut Context<'_, Self>) {
            self.hops += 1;
            if ctx.pid() == ProcessId::new(1) {
                ctx.send(from, msg + 1);
            } else {
                ctx.respond(msg + 1);
            }
        }

        fn on_timer(&mut self, _t: (), _ctx: &mut Context<'_, Self>) {}
    }

    fn bounds() -> DelayBounds {
        DelayBounds::new(SimDuration::from_ticks(10), SimDuration::from_ticks(4))
    }

    #[test]
    fn ping_pong_round_trip_takes_two_delays() {
        let mut sim = Simulation::new(
            vec![PingPong::default(), PingPong::default()],
            ClockAssignment::zero(2),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        let report = sim.run().unwrap();
        assert!(sim.history().is_complete());
        let rec = &sim.history().records()[0];
        assert_eq!(rec.resp(), Some(&2));
        // Round trip at delay d = 10 each way.
        assert_eq!(rec.latency().unwrap().as_ticks(), 20);
        assert_eq!(report.end_time, SimTime::from_ticks(20));
        assert_eq!(sim.message_log().len(), 2);
        assert_eq!(sim.message_log()[0].delay.as_ticks(), 10);
    }

    /// An actor that responds via a timer after a fixed local delay.
    #[derive(Debug)]
    struct DelayedResponder {
        wait: SimDuration,
    }

    impl Actor for DelayedResponder {
        type Msg = ();
        type Op = u32;
        type Resp = u32;
        type Timer = u32;

        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            ctx.set_timer(self.wait, op);
        }

        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}

        fn on_timer(&mut self, timer: u32, ctx: &mut Context<'_, Self>) {
            ctx.respond(timer * 10);
        }
    }

    #[test]
    fn timer_drives_response_latency() {
        let mut sim = Simulation::new(
            vec![DelayedResponder {
                wait: SimDuration::from_ticks(7),
            }],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(3), 5);
        sim.run().unwrap();
        let rec = &sim.history().records()[0];
        assert_eq!(rec.resp(), Some(&50));
        assert_eq!(rec.invoked_at, SimTime::from_ticks(3));
        assert_eq!(rec.responded_at(), Some(SimTime::from_ticks(10)));
    }

    /// An actor that cancels its own first timer; only the second fires.
    #[derive(Debug, Default)]
    struct Canceller {
        fired: Vec<u32>,
    }

    impl Actor for Canceller {
        type Msg = ();
        type Op = ();
        type Resp = ();
        type Timer = u32;

        fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
            let first = ctx.set_timer(SimDuration::from_ticks(5), 1);
            ctx.set_timer(SimDuration::from_ticks(6), 2);
            ctx.cancel_timer(first);
        }

        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}

        fn on_timer(&mut self, timer: u32, ctx: &mut Context<'_, Self>) {
            self.fired.push(timer);
            if timer == 2 {
                ctx.respond(());
            }
        }
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut sim = Simulation::new(
            vec![Canceller::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).fired, vec![2]);
    }

    #[test]
    fn clock_offsets_visible_to_actors() {
        #[derive(Debug, Default)]
        struct ClockReader {
            read: Option<i64>,
        }
        impl Actor for ClockReader {
            type Msg = ();
            type Op = ();
            type Resp = ();
            type Timer = ();
            fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
                self.read = Some(ctx.clock().as_ticks());
                ctx.respond(());
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
            fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
        }

        let clocks = ClockAssignment::single_late(2, ProcessId::new(1), SimDuration::from_ticks(4));
        let mut sim = Simulation::new(
            vec![ClockReader::default(), ClockReader::default()],
            clocks,
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(10), ());
        sim.schedule_invoke(ProcessId::new(1), SimTime::from_ticks(10), ());
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).read, Some(10));
        assert_eq!(sim.actor(ProcessId::new(1)).read, Some(6));
    }

    #[test]
    #[should_panic(expected = "another operation is pending")]
    fn overlapping_invocations_rejected() {
        let mut sim = Simulation::new(
            vec![DelayedResponder {
                wait: SimDuration::from_ticks(100),
            }],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(1), 2);
        let _ = sim.run();
    }

    #[test]
    fn event_cap_reported() {
        #[derive(Debug)]
        struct Looper;
        impl Actor for Looper {
            type Msg = ();
            type Op = ();
            type Resp = ();
            type Timer = ();
            fn on_invoke(&mut self, _op: (), ctx: &mut Context<'_, Self>) {
                ctx.set_timer(SimDuration::from_ticks(1), ());
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
            fn on_timer(&mut self, _: (), ctx: &mut Context<'_, Self>) {
                ctx.set_timer(SimDuration::from_ticks(1), ());
            }
        }
        let mut sim = Simulation::new(
            vec![Looper],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        )
        .with_config(SimConfig { max_events: 100 });
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        assert_eq!(sim.run(), Err(SimError::EventCapExceeded { cap: 100 }));
    }

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<u32>,
    }
    impl Actor for Recorder {
        type Msg = ();
        type Op = u32;
        type Resp = ();
        type Timer = ();
        fn on_invoke(&mut self, op: u32, ctx: &mut Context<'_, Self>) {
            self.seen.push(op);
            ctx.respond(());
        }
        fn on_message(&mut self, _: ProcessId, _: (), _: &mut Context<'_, Self>) {}
        fn on_timer(&mut self, _: (), _: &mut Context<'_, Self>) {}
    }

    #[test]
    fn same_time_events_fifo_by_schedule_order() {
        // Two invocations at the same instant on the same process would
        // violate the pending-op rule, so use the response to sequence:
        // each invocation completes instantly, so both run at t=5 in
        // schedule order.
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 2);
        sim.run().unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).seen, vec![1, 2]);
    }

    #[test]
    fn scheduled_fifo_reproduces_the_default_run() {
        let build = || {
            let mut sim = Simulation::new(
                vec![PingPong::default(), PingPong::default()],
                ClockAssignment::zero(2),
                FixedDelay::maximal(bounds()),
            );
            sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
            sim
        };
        let mut plain = build();
        let plain_report = plain.run().unwrap();
        let mut hooked = build();
        let hooked_report = hooked.run_scheduled(&mut FifoPolicy).unwrap();
        assert_eq!(plain_report, hooked_report);
        assert_eq!(plain.message_log(), hooked.message_log());
        assert_eq!(
            plain.history().records()[0].resp(),
            hooked.history().records()[0].resp()
        );
    }

    #[test]
    fn policy_reorders_same_time_events() {
        struct TakeLast;
        impl<A: Actor> SchedulePolicy<A> for TakeLast {
            fn choose(&mut self, _: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
                ScheduleDecision::Take(enabled.len() - 1)
            }
        }
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 1);
        sim.schedule_invoke(ProcessId::new(0), SimTime::from_ticks(5), 2);
        sim.run_scheduled(&mut TakeLast).unwrap();
        assert_eq!(
            sim.actor(ProcessId::new(0)).seen,
            vec![2, 1],
            "the policy must be able to invert the default order"
        );
    }

    #[test]
    fn policy_abort_surfaces_as_error() {
        struct AbortAll;
        impl<A: Actor> SchedulePolicy<A> for AbortAll {
            fn choose(&mut self, _: SimTime, _: &[EventView<'_, A>]) -> ScheduleDecision {
                ScheduleDecision::Abort
            }
        }
        let mut sim = Simulation::new(
            vec![Recorder::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, 1);
        assert_eq!(sim.run_scheduled(&mut AbortAll), Err(SimError::PolicyAbort));
    }

    #[test]
    fn scheduled_run_filters_stale_timer_batches() {
        // The canceller's first timer is cancelled at set time; when its
        // expiry would pop, the scheduled path must not present it as a
        // choice.
        struct CountBatches {
            multi: u32,
        }
        impl<A: Actor> SchedulePolicy<A> for CountBatches {
            fn choose(&mut self, _: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
                if enabled.len() > 1 {
                    self.multi += 1;
                }
                ScheduleDecision::Take(0)
            }
        }
        let mut sim = Simulation::new(
            vec![Canceller::default()],
            ClockAssignment::zero(1),
            FixedDelay::maximal(bounds()),
        );
        sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, ());
        let mut policy = CountBatches { multi: 0 };
        sim.run_scheduled(&mut policy).unwrap();
        assert_eq!(sim.actor(ProcessId::new(0)).fired, vec![2]);
        assert_eq!(policy.multi, 0, "no batch should contain the stale expiry");
    }
}
