//! Shard fan-out: running `S` independent simulations side by side.
//!
//! A *shard* is a self-contained replica group: its own actors, its own
//! [`CalendarQueue`](crate::equeue::CalendarQueue), its own payload
//! slabs, its own RNG stream. Shards share no allocation and no lock, so
//! a sharded run is just a grid of `S` single-shard runs — [`run_shards`]
//! delegates to [`par::run_grid`], inheriting its
//! worker-pool policy (`SKEWBOUND_THREADS`, `SKEWBOUND_PAR`) and its
//! input-order determinism: shard `i`'s result is bit-identical whether
//! the shards ran sequentially or on any number of workers.
//!
//! [`ShardStats`] folds per-shard measurements into the aggregate
//! throughput figure the benchmarks report. The aggregate is the *sum of
//! per-shard rates* (`Σ eventsᵢ / wallᵢ`), not total events over total
//! wall time: on a single-core host the shards time-share the CPU, and
//! the rate sum measures what the same shards would sustain given a core
//! each — which is the quantity that should scale linearly in `S`.

use crate::par;

/// One shard's measurement: how many simulation events it processed and
/// how long its run took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRun {
    /// Events the shard's engine dispatched.
    pub events: u64,
    /// Wall-clock nanoseconds the shard's run (and check) took.
    pub wall_nanos: u64,
}

/// Aggregate over a set of [`ShardRun`]s (see the [module docs](self)
/// for why the throughput is a rate *sum*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Number of shards folded in.
    pub shards: usize,
    /// Total events across all shards.
    pub events: u64,
    /// `Σ eventsᵢ / wallᵢ`, in events per second.
    pub aggregate_events_per_sec: f64,
    /// The slowest shard's wall time.
    pub max_wall_nanos: u64,
    /// Total CPU-side wall time across shards.
    pub sum_wall_nanos: u64,
}

impl ShardStats {
    /// Folds per-shard runs in input order (the floating-point sum is
    /// therefore deterministic for a fixed `runs` slice).
    #[must_use]
    pub fn from_runs(runs: &[ShardRun]) -> Self {
        let mut rate_sum = 0.0;
        let mut events = 0u64;
        let mut max_wall = 0u64;
        let mut sum_wall = 0u64;
        for run in runs {
            events += run.events;
            max_wall = max_wall.max(run.wall_nanos);
            sum_wall += run.wall_nanos;
            if run.wall_nanos > 0 {
                rate_sum += run.events as f64 / (run.wall_nanos as f64 / 1e9);
            }
        }
        ShardStats {
            shards: runs.len(),
            events,
            aggregate_events_per_sec: rate_sum,
            max_wall_nanos: max_wall,
            sum_wall_nanos: sum_wall,
        }
    }
}

/// Runs `run(shard)` for every shard in `0..shards` over the scenario
/// worker pool and returns the results in shard order.
///
/// `run` must be pure per shard (seed everything from the shard index):
/// then the returned vector is bit-identical across `SKEWBOUND_THREADS`
/// settings, because [`par::run_grid`] only
/// reorders *execution*, never results.
///
/// # Panics
///
/// Re-raises the first (by shard index) panic of any shard job.
pub fn run_shards<R, F>(shards: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let jobs: Vec<usize> = (0..shards).collect();
    par::run_grid(&jobs, |_, &shard| run(shard))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_run_in_order_and_independently() {
        let out = run_shards(8, |shard| shard * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stats_sum_rates_not_walls() {
        // Two shards, each 1000 events in 1 ms: the aggregate is
        // 2,000,000 events/sec (a core each), not 1,000,000 (serialized).
        let runs = [
            ShardRun {
                events: 1000,
                wall_nanos: 1_000_000,
            },
            ShardRun {
                events: 1000,
                wall_nanos: 1_000_000,
            },
        ];
        let stats = ShardStats::from_runs(&runs);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.events, 2000);
        assert!((stats.aggregate_events_per_sec - 2_000_000.0).abs() < 1.0);
        assert_eq!(stats.max_wall_nanos, 1_000_000);
        assert_eq!(stats.sum_wall_nanos, 2_000_000);
    }

    #[test]
    fn zero_wall_shard_contributes_no_rate() {
        let stats = ShardStats::from_runs(&[ShardRun {
            events: 5,
            wall_nanos: 0,
        }]);
        assert_eq!(stats.events, 5);
        assert_eq!(stats.aggregate_events_per_sec, 0.0);
    }
}
