//! Operation histories: what the application layer observed.
//!
//! A history records, for every operation instance, its invoking process,
//! invocation real time, and (once it completes) its response and response
//! real time. Histories are the interface between the simulator and both
//! the linearizability checker and the latency measurements: the thesis's
//! time bound for an operation is exactly
//! `response_real_time − invocation_real_time` in the worst case.

use serde::{Deserialize, Serialize};

use crate::ids::{OpId, ProcessId};
use crate::time::{SimDuration, SimTime};

/// One operation instance as observed at the application layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord<O, R> {
    /// Run-unique operation id.
    pub id: OpId,
    /// Invoking (and responding) process.
    pub pid: ProcessId,
    /// The invocation (operation plus arguments).
    pub op: O,
    /// Real time of the invocation.
    pub invoked_at: SimTime,
    /// The response value and its real time, if the operation completed.
    pub response: Option<(R, SimTime)>,
}

impl<O, R> OpRecord<O, R> {
    /// The response value, if any.
    #[must_use]
    pub fn resp(&self) -> Option<&R> {
        self.response.as_ref().map(|(r, _)| r)
    }

    /// The real time of the response, if any.
    #[must_use]
    pub fn responded_at(&self) -> Option<SimTime> {
        self.response.as_ref().map(|&(_, t)| t)
    }

    /// Invocation-to-response latency, if the operation completed.
    #[must_use]
    pub fn latency(&self) -> Option<SimDuration> {
        self.responded_at().map(|t| t - self.invoked_at)
    }

    /// `true` when `self` finished strictly before `other` was invoked
    /// (the real-time precedence that linearizability must respect).
    #[must_use]
    pub fn precedes(&self, other: &OpRecord<O, R>) -> bool {
        match self.responded_at() {
            Some(t) => t < other.invoked_at,
            None => false,
        }
    }
}

/// The complete record of all operations in a run, in invocation order.
///
/// # Examples
///
/// ```
/// use skewbound_sim::history::History;
/// use skewbound_sim::ids::ProcessId;
/// use skewbound_sim::time::SimTime;
///
/// let mut h: History<&str, i64> = History::new();
/// let id = h.record_invoke(ProcessId::new(0), "read", SimTime::from_ticks(0));
/// h.record_response(id, 42, SimTime::from_ticks(10));
/// assert!(h.is_complete());
/// assert_eq!(h.max_latency().unwrap().as_ticks(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct History<O, R> {
    records: Vec<OpRecord<O, R>>,
}

impl<O, R> Default for History<O, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O, R> History<O, R> {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        History {
            records: Vec::new(),
        }
    }

    /// Creates an empty history with room for `capacity` operations
    /// before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        History {
            records: Vec::with_capacity(capacity),
        }
    }

    /// Reserves room for at least `additional` further operations.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Appends an invocation and returns its id.
    pub fn record_invoke(&mut self, pid: ProcessId, op: O, at: SimTime) -> OpId {
        let id = OpId::new(self.records.len() as u64);
        self.records.push(OpRecord {
            id,
            pid,
            op,
            invoked_at: at,
            response: None,
        });
        id
    }

    /// Records the response of operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or already responded: both indicate an
    /// engine bug or a malformed hand-built history.
    pub fn record_response(&mut self, id: OpId, resp: R, at: SimTime) {
        let rec = self
            .records
            .get_mut(id.as_u64() as usize)
            .expect("response for unknown operation id");
        assert!(rec.response.is_none(), "operation {id:?} responded twice");
        assert!(
            at >= rec.invoked_at,
            "operation {id:?} responded before its invocation"
        );
        rec.response = Some((resp, at));
    }

    /// All records, in invocation order.
    #[must_use]
    pub fn records(&self) -> &[OpRecord<O, R>] {
        &self.records
    }

    /// Number of operations (complete or pending).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no operations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the given id.
    #[must_use]
    pub fn get(&self, id: OpId) -> Option<&OpRecord<O, R>> {
        self.records.get(id.as_u64() as usize)
    }

    /// `true` when every invocation has a matching response — the
    /// "complete run" precondition for linearizability checking.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(|r| r.response.is_some())
    }

    /// Iterates over completed operations only.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord<O, R>> {
        self.records.iter().filter(|r| r.response.is_some())
    }

    /// The worst-case (maximum) latency over completed operations.
    #[must_use]
    pub fn max_latency(&self) -> Option<SimDuration> {
        self.records.iter().filter_map(OpRecord::latency).max()
    }

    /// The worst-case latency over completed operations matching `pred`
    /// (e.g. "all dequeues"). Returns `None` when nothing matches.
    pub fn max_latency_where<F>(&self, mut pred: F) -> Option<SimDuration>
    where
        F: FnMut(&O) -> bool,
    {
        self.records
            .iter()
            .filter(|r| pred(&r.op))
            .filter_map(OpRecord::latency)
            .max()
    }

    /// All latencies of completed operations matching `pred`, in
    /// invocation order.
    pub fn latencies_where<F>(&self, mut pred: F) -> Vec<SimDuration>
    where
        F: FnMut(&O) -> bool,
    {
        self.records
            .iter()
            .filter(|r| pred(&r.op))
            .filter_map(OpRecord::latency)
            .collect()
    }

    /// Maps operations and responses into another representation (e.g. the
    /// checker's generic event type).
    pub fn map<O2, R2, FO, FR>(&self, mut fo: FO, mut fr: FR) -> History<O2, R2>
    where
        FO: FnMut(&O) -> O2,
        FR: FnMut(&R) -> R2,
    {
        History {
            records: self
                .records
                .iter()
                .map(|r| OpRecord {
                    id: r.id,
                    pid: r.pid,
                    op: fo(&r.op),
                    invoked_at: r.invoked_at,
                    response: r.response.as_ref().map(|(resp, t)| (fr(resp), *t)),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn record_and_complete() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "w", t(0));
        let b = h.record_invoke(ProcessId::new(1), "r", t(2));
        assert!(!h.is_complete());
        h.record_response(a, 0, t(5));
        h.record_response(b, 1, t(9));
        assert!(h.is_complete());
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a).unwrap().latency().unwrap().as_ticks(), 5);
        assert_eq!(h.max_latency().unwrap().as_ticks(), 7);
    }

    #[test]
    fn precedence_requires_strict_order() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "a", t(0));
        let b = h.record_invoke(ProcessId::new(1), "b", t(5));
        h.record_response(a, 0, t(5));
        h.record_response(b, 0, t(8));
        // a responds exactly when b is invoked → they overlap per the model
        // ("response occurs before the invocation" is strict).
        assert!(!h.records()[0].precedes(&h.records()[1]));
        let mut h2: History<&str, u32> = History::new();
        let a2 = h2.record_invoke(ProcessId::new(0), "a", t(0));
        let b2 = h2.record_invoke(ProcessId::new(1), "b", t(6));
        h2.record_response(a2, 0, t(5));
        h2.record_response(b2, 0, t(8));
        assert!(h2.records()[0].precedes(&h2.records()[1]));
    }

    #[test]
    #[should_panic(expected = "responded twice")]
    fn double_response_rejected() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "a", t(0));
        h.record_response(a, 0, t(1));
        h.record_response(a, 0, t(2));
    }

    #[test]
    #[should_panic(expected = "before its invocation")]
    fn response_before_invoke_rejected() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "a", t(5));
        h.record_response(a, 0, t(3));
    }

    #[test]
    fn filtered_latencies() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "read", t(0));
        let b = h.record_invoke(ProcessId::new(1), "write", t(0));
        h.record_response(a, 0, t(4));
        h.record_response(b, 0, t(9));
        assert_eq!(
            h.max_latency_where(|op| *op == "read").unwrap().as_ticks(),
            4
        );
        assert_eq!(h.latencies_where(|op| *op == "write").len(), 1);
        assert_eq!(h.max_latency_where(|op| *op == "cas"), None);
    }

    #[test]
    fn map_preserves_structure() {
        let mut h: History<&str, u32> = History::new();
        let a = h.record_invoke(ProcessId::new(0), "read", t(0));
        h.record_response(a, 7, t(4));
        let m = h.map(|op| op.len(), |r| i64::from(*r));
        assert_eq!(m.records()[0].op, 4);
        assert_eq!(m.records()[0].resp(), Some(&7i64));
    }
}
