//! A calendar (radix) event queue for the discrete-event hot path.
//!
//! The engine used to schedule every event through a
//! `BinaryHeap<Scheduled<A>>`: `O(log n)` sift-up/sift-down per
//! operation, with the payload moved through the heap on every swap.
//! Discrete-event workloads are far more structured than the general
//! priority-queue problem assumes — virtual time only moves forward,
//! and almost every push lands within one delay bound `d` of the
//! current instant. A [`CalendarQueue`] exploits that structure:
//!
//! * Time is divided into fixed power-of-two *days* of `2^shift` ticks.
//!   A ring of `nbuckets` (also a power of two) buckets maps day `D` to
//!   bucket `D mod nbuckets`, so the ring covers a rolling window of
//!   `nbuckets` consecutive days starting at the cursor.
//! * A push within the window appends to its day's bucket — `O(1)`, no
//!   sifting. Pushes beyond the window (rare: timers longer than the
//!   delay bound) go to a small overflow `BinaryHeap` and migrate into
//!   the ring as the cursor advances.
//! * Buckets keep entries in push order with a `sorted` flag and a head
//!   cursor. Pushes are monotone in `(time, seq)` almost always (the
//!   seq counter increases), so the flag stays set and a pop is a plain
//!   array read. An out-of-order append (same-day earlier time, or a
//!   re-pushed entry with an old seq) clears the flag and the bucket is
//!   lazily `sort_unstable`d once before its next pop — deterministic
//!   despite the unstable sort because `(time, seq)` keys are unique.
//! * Occupancy is a bitmask, one bit per bucket; finding the next
//!   non-empty bucket is a word scan plus `trailing_zeros`.
//!
//! ## Determinism contract
//!
//! [`CalendarQueue::pop`] returns entries in exactly ascending
//! `(SimTime, seq)` order — bit-identical to a `BinaryHeap` min-heap
//! over the same keys — provided the caller upholds the discrete-event
//! contract: **never push an entry earlier than the last popped entry**
//! (pushing at the same time is fine). Keys must be unique, which the
//! engine guarantees by allocating `seq` from a per-run counter. The
//! property suite in `tests/equeue_prop.rs` checks the equivalence on
//! random workloads, including same-tick ties and times adjacent to
//! `u64::MAX`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 4096;

/// Sentinel for [`CalendarQueue::cur`]: no settled frontier bucket.
const NO_FRONTIER: usize = usize::MAX;

#[derive(Clone, Copy)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    data: T,
}

struct Bucket<T> {
    entries: Vec<Entry<T>>,
    /// Index of the next unpopped entry; entries before it are spent.
    head: usize,
    /// `true` while `entries[head..]` is ascending in `(at, seq)`.
    sorted: bool,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            entries: Vec::new(),
            head: 0,
            sorted: true,
        }
    }
}

struct OverflowEntry<T> {
    at: SimTime,
    seq: u64,
    data: T,
}

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (at, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A monotone event queue popping entries in ascending `(SimTime, seq)`
/// order (see the [module docs](self) for the design and the
/// determinism contract).
///
/// # Examples
///
/// ```
/// use skewbound_sim::equeue::CalendarQueue;
/// use skewbound_sim::time::{SimDuration, SimTime};
///
/// let mut q = CalendarQueue::new(8, SimDuration::from_ticks(10));
/// q.push(SimTime::from_ticks(7), 1, "late");
/// q.push(SimTime::from_ticks(3), 0, "early");
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(3), 0, "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ticks(7), 1, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// One bit per bucket: set while the bucket has unpopped entries.
    occupied: Vec<u64>,
    /// `log2` of the day width in ticks.
    shift: u32,
    /// `nbuckets - 1` (bucket count is a power of two).
    mask: u64,
    /// The day of the earliest possibly-live entry; only advances.
    cursor_day: u64,
    /// Tick of the last popped entry — the floor the push contract is
    /// checked against.
    last_pop: u64,
    /// The bucket [`CalendarQueue::settle`] last landed on, while it is
    /// still guaranteed to hold the global minimum (`NO_FRONTIER`
    /// otherwise): pops hit it directly without re-scanning. Invalidated
    /// when the bucket drains or an insert breaks its sort order;
    /// inserts into *later* days never touch the frontier.
    cur: usize,
    /// Live entries in the bucket ring.
    cal_len: usize,
    /// Entries more than `nbuckets` days past the cursor, migrated into
    /// the ring as the cursor advances.
    overflow: BinaryHeap<OverflowEntry<T>>,
}

impl<T> core::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &(self.cal_len + self.overflow.len()))
            .field("buckets", &self.buckets.len())
            .field("day_ticks", &(1u64 << self.shift))
            .field("cursor_day", &self.cursor_day)
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<T: Copy> CalendarQueue<T> {
    /// Creates a queue sized for roughly `expected` concurrently queued
    /// entries whose times mostly fall within `horizon` of the current
    /// instant (the engine passes the delay bound `d`). Both parameters
    /// only tune bucket geometry; any entry count and any time is
    /// handled correctly.
    #[must_use]
    pub fn new(expected: usize, horizon: SimDuration) -> Self {
        let nbuckets = expected.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Cover about two horizons with the ring so steady-state pushes
        // (delays in [d - u, d], short timers) land in buckets, not the
        // overflow heap. Day width is forced to a power of two so the
        // day of a time is a shift, not a division.
        let span = horizon.as_ticks().saturating_mul(2).max(1);
        let width = (span / nbuckets as u64).max(1).next_power_of_two();
        // Pre-size every bucket so steady-state pushes never allocate —
        // construction is off the measured path, pushes are on it.
        let per_bucket = (expected / nbuckets).max(4);
        let mut buckets = Vec::with_capacity(nbuckets);
        buckets.resize_with(nbuckets, || Bucket {
            entries: Vec::with_capacity(per_bucket),
            head: 0,
            sorted: true,
        });
        CalendarQueue {
            buckets,
            occupied: vec![0u64; nbuckets.div_ceil(64)],
            shift: width.trailing_zeros(),
            mask: (nbuckets - 1) as u64,
            cursor_day: 0,
            last_pop: 0,
            cur: NO_FRONTIER,
            cal_len: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cal_len + self.overflow.len()
    }

    /// `true` when no entries are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queues an entry. `at` must not precede the time of the last
    /// popped entry (the discrete-event contract; see the
    /// [module docs](self)), and `(at, seq)` must be unique among queued
    /// entries.
    pub fn push(&mut self, at: SimTime, seq: u64, data: T) {
        debug_assert!(
            at.as_ticks() >= self.last_pop,
            "pushed an entry before the last popped time (at {at:?}, last pop t{})",
            self.last_pop
        );
        // A push at the last popped time can land behind the cursor when
        // its bucket was drained and the cursor settled forward (the
        // scheduler's batch re-push). Such an entry precedes everything
        // queued, so filing it under the cursor's own day keeps the scan
        // order exact without ever moving the cursor backwards.
        let day = (at.as_ticks() >> self.shift).max(self.cursor_day);
        if day - self.cursor_day < self.buckets.len() as u64 {
            self.bucket_insert(day, at, seq, data);
        } else {
            self.overflow.push(OverflowEntry { at, seq, data });
        }
    }

    /// Removes and returns the earliest entry as `(at, seq, data)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let idx = if self.cur == NO_FRONTIER {
            self.settle()?
        } else {
            self.cur
        };
        let b = &mut self.buckets[idx];
        let e = b.entries[b.head];
        b.head += 1;
        self.cal_len -= 1;
        if b.head == b.entries.len() {
            b.entries.clear();
            b.head = 0;
            b.sorted = true;
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
            self.cur = NO_FRONTIER;
        }
        self.last_pop = e.at.as_ticks();
        Some((e.at, e.seq, e.data))
    }

    /// The time of the earliest entry without removing it. Like `pop`,
    /// this may advance internal cursors and sort a bucket, hence
    /// `&mut self`.
    pub fn next_at(&mut self) -> Option<SimTime> {
        let idx = if self.cur == NO_FRONTIER {
            self.settle()?
        } else {
            self.cur
        };
        let b = &self.buckets[idx];
        Some(b.entries[b.head].at)
    }

    /// Positions the cursor on the bucket holding the globally earliest
    /// entry, migrating newly in-window overflow entries and lazily
    /// sorting the bucket. Returns its index, or `None` when empty.
    fn settle(&mut self) -> Option<usize> {
        if self.cal_len == 0 {
            // Ring empty: jump the cursor to the overflow's earliest day
            // so the migration below moves at least one entry in.
            let peek_day = self.overflow.peek()?.at.as_ticks() >> self.shift;
            debug_assert!(peek_day >= self.cursor_day, "overflow behind cursor");
            self.cursor_day = peek_day;
        }
        let nbuckets = self.buckets.len() as u64;
        while let Some(e) = self.overflow.peek() {
            let day = e.at.as_ticks() >> self.shift;
            if day.saturating_sub(self.cursor_day) >= nbuckets {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let day = e.at.as_ticks() >> self.shift;
            self.bucket_insert(day, e.at, e.seq, e.data);
        }
        debug_assert!(self.cal_len > 0, "migration left the ring empty");
        let pos = (self.cursor_day & self.mask) as usize;
        let idx = self.next_occupied(pos).expect("cal_len > 0");
        // Each in-window day maps to a distinct bucket, so stepping to
        // the next occupied bucket from the cursor's position reaches
        // the bucket of the earliest occupied day. Remaining overflow
        // entries lie at or beyond the *pre-advance* window end, hence
        // after every ring entry — the found bucket is the global min.
        let steps = (idx as u64).wrapping_sub(pos as u64) & self.mask;
        self.cursor_day += steps;
        let b = &mut self.buckets[idx];
        if !b.sorted {
            if b.head > 0 {
                b.entries.drain(..b.head);
                b.head = 0;
            }
            b.entries.sort_unstable_by_key(|e| (e.at, e.seq));
            b.sorted = true;
        }
        self.cur = idx;
        Some(idx)
    }

    /// Files an entry under `day` (normally `at`'s own day; the clamped
    /// cursor day for behind-cursor re-pushes, which sort first anyway).
    fn bucket_insert(&mut self, day: u64, at: SimTime, seq: u64, data: T) {
        let idx = (day & self.mask) as usize;
        let b = &mut self.buckets[idx];
        if b.sorted {
            if let Some(last) = b.entries.last() {
                if (at, seq) < (last.at, last.seq) {
                    b.sorted = false;
                }
            }
        }
        b.entries.push(Entry { at, seq, data });
        if idx == self.cur && !b.sorted {
            // The frontier bucket needs a re-sort (and spent-prefix
            // drain) before its next pop — fall back to `settle`.
            self.cur = NO_FRONTIER;
        }
        self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        self.cal_len += 1;
    }

    /// Index of the first occupied bucket at or cyclically after `from`.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let nwords = self.occupied.len();
        let start_word = from >> 6;
        let first = self.occupied[start_word] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((start_word << 6) | first.trailing_zeros() as usize);
        }
        for i in 1..=nwords {
            let w = (start_word + i) % nwords;
            let bits = self.occupied[w];
            if bits != 0 {
                return Some((w << 6) | bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at.as_ticks(), seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new(4, SimDuration::from_ticks(100));
        q.push(t(50), 3, 0);
        q.push(t(10), 1, 0);
        q.push(t(50), 2, 0);
        q.push(t(10), 0, 0);
        assert_eq!(q.len(), 4);
        assert_eq!(drain(&mut q), vec![(10, 0), (10, 1), (50, 2), (50, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_wraps_across_many_windows() {
        // Horizon 1 tick → minimal day width; times far apart force both
        // overflow migration and repeated ring wrap-around.
        let mut q = CalendarQueue::new(1, SimDuration::from_ticks(1));
        let times: Vec<u64> = (0..200).map(|i| i * 37).collect();
        for (seq, &ticks) in times.iter().enumerate() {
            q.push(t(ticks), seq as u64, 0);
        }
        let popped = drain(&mut q);
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &ti)| (ti, s as u64))
            .collect();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn interleaved_push_pop_respects_contract() {
        let mut q = CalendarQueue::new(8, SimDuration::from_ticks(10));
        q.push(t(5), 0, 0);
        assert_eq!(q.pop(), Some((t(5), 0, 0)));
        // New pushes at the last popped time are legal and pop next.
        q.push(t(5), 2, 0);
        q.push(t(7), 1, 0);
        assert_eq!(q.next_at(), Some(t(5)));
        assert_eq!(drain(&mut q), vec![(5, 2), (7, 1)]);
    }

    #[test]
    fn repushed_old_seq_sorts_before_later_entries() {
        // Model the scheduler's batch re-push: an entry with an *older*
        // seq lands in a bucket after younger ones at the same time.
        let mut q = CalendarQueue::new(8, SimDuration::from_ticks(100));
        q.push(t(20), 5, 0);
        q.push(t(20), 9, 0);
        q.push(t(20), 3, 0); // out of order: marks the bucket unsorted
        assert_eq!(drain(&mut q), vec![(20, 3), (20, 5), (20, 9)]);
    }

    #[test]
    fn saturation_adjacent_times() {
        let mut q = CalendarQueue::new(4, SimDuration::from_ticks(16));
        q.push(t(u64::MAX), 1, 0);
        q.push(t(u64::MAX - 1), 0, 0);
        q.push(t(3), 2, 0);
        assert_eq!(
            drain(&mut q),
            vec![(3, 2), (u64::MAX - 1, 0), (u64::MAX, 1)]
        );
    }

    #[test]
    fn overflow_migrates_in_pop_order() {
        let mut q = CalendarQueue::new(2, SimDuration::from_ticks(2));
        // Far-future entries overflow; near entries stay in the ring.
        q.push(t(1_000_000), 0, 0);
        q.push(t(2), 1, 0);
        q.push(t(1_000_001), 2, 0);
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q), vec![(2, 1), (1_000_000, 0), (1_000_001, 2)]);
    }

    #[test]
    fn next_at_is_stable_and_nonconsuming() {
        let mut q = CalendarQueue::new(4, SimDuration::from_ticks(10));
        assert_eq!(q.next_at(), None);
        q.push(t(9), 0, 7);
        assert_eq!(q.next_at(), Some(t(9)));
        assert_eq!(q.next_at(), Some(t(9)));
        assert_eq!(q.pop(), Some((t(9), 0, 7)));
        assert_eq!(q.next_at(), None);
    }
}
