//! Workload drivers: who invokes what, when.
//!
//! The application layer of the model invokes operations at processes,
//! each process having at most one pending operation. A [`Driver`]
//! captures that layer: it supplies the initial invocations and, on each
//! response, optionally the process's next operation. Closed-loop drivers
//! (invoke, wait for response, invoke again) keep the one-pending-op
//! invariant by construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::ProcessId;
use crate::time::{SimDuration, SimTime};

/// The application layer: initial invocations plus a closed-loop "what
/// next" rule.
pub trait Driver<O, R> {
    /// Invocations to schedule before the run starts.
    fn initial(&mut self) -> Vec<(ProcessId, SimTime, O)>;

    /// Called when `pid` completes `op` with response `resp` at real time
    /// `now`. Returning `Some((gap, next))` invokes `next` at `now + gap`.
    fn next(&mut self, pid: ProcessId, op: &O, resp: &R, now: SimTime) -> Option<(SimDuration, O)>;
}

/// A driver that schedules nothing (pure scripted runs use
/// [`Simulation::schedule_invoke`](crate::engine::Simulation::schedule_invoke)).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDriver;

impl<O, R> Driver<O, R> for NoDriver {
    fn initial(&mut self) -> Vec<(ProcessId, SimTime, O)> {
        Vec::new()
    }

    fn next(
        &mut self,
        _pid: ProcessId,
        _op: &O,
        _resp: &R,
        _now: SimTime,
    ) -> Option<(SimDuration, O)> {
        None
    }
}

/// Closed-loop driver: every process draws operations from a generator
/// until it has completed its per-process quota.
///
/// The generator is called as `gen(pid, index, rng)` where `index` counts
/// the operations issued by that process so far; runs are deterministic
/// for a fixed seed.
pub struct ClosedLoop<O, F> {
    gen: F,
    ops_per_process: usize,
    processes: Vec<ProcessId>,
    start: SimTime,
    gap: SimDuration,
    issued: Vec<usize>,
    rng: StdRng,
    _marker: core::marker::PhantomData<O>,
}

impl<O, F> core::fmt::Debug for ClosedLoop<O, F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClosedLoop")
            .field("processes", &self.processes)
            .field("ops_per_process", &self.ops_per_process)
            .field("issued", &self.issued)
            .finish_non_exhaustive()
    }
}

impl<O, F> ClosedLoop<O, F>
where
    F: FnMut(ProcessId, usize, &mut StdRng) -> O,
{
    /// Creates a closed-loop driver over `processes`, issuing
    /// `ops_per_process` operations each, all starting at time zero with
    /// no think time.
    #[must_use]
    pub fn new(processes: Vec<ProcessId>, ops_per_process: usize, seed: u64, gen: F) -> Self {
        let issued = vec![0; processes.len()];
        ClosedLoop {
            gen,
            ops_per_process,
            processes,
            start: SimTime::ZERO,
            gap: SimDuration::ZERO,
            issued,
            rng: StdRng::seed_from_u64(seed),
            _marker: core::marker::PhantomData,
        }
    }

    /// Sets the common start time of the first invocations.
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Sets the think time between a response and the next invocation.
    #[must_use]
    pub fn with_gap(mut self, gap: SimDuration) -> Self {
        self.gap = gap;
        self
    }

    fn slot(&self, pid: ProcessId) -> Option<usize> {
        self.processes.iter().position(|&p| p == pid)
    }
}

impl<O, R, F> Driver<O, R> for ClosedLoop<O, F>
where
    F: FnMut(ProcessId, usize, &mut StdRng) -> O,
{
    fn initial(&mut self) -> Vec<(ProcessId, SimTime, O)> {
        let mut out = Vec::new();
        for i in 0..self.processes.len() {
            if self.ops_per_process == 0 {
                break;
            }
            let pid = self.processes[i];
            let op = (self.gen)(pid, 0, &mut self.rng);
            self.issued[i] = 1;
            out.push((pid, self.start, op));
        }
        out
    }

    fn next(
        &mut self,
        pid: ProcessId,
        _op: &O,
        _resp: &R,
        _now: SimTime,
    ) -> Option<(SimDuration, O)> {
        let slot = self.slot(pid)?;
        if self.issued[slot] >= self.ops_per_process {
            return None;
        }
        let index = self.issued[slot];
        self.issued[slot] += 1;
        let op = (self.gen)(pid, index, &mut self.rng);
        Some((self.gap, op))
    }
}

/// A scripted schedule: a fixed list of `(pid, time, op)` invocations and
/// no closed-loop follow-ups.
///
/// Useful for the adversarial lower-bound scenarios where invocation times
/// are part of the construction. The caller is responsible for leaving
/// enough room between operations of the same process.
#[derive(Debug, Clone)]
pub struct Script<O> {
    invocations: Vec<(ProcessId, SimTime, O)>,
}

impl<O> Script<O> {
    /// Creates an empty script.
    #[must_use]
    pub fn new() -> Self {
        Script {
            invocations: Vec::new(),
        }
    }

    /// Appends an invocation.
    #[must_use]
    pub fn at(mut self, pid: ProcessId, time: SimTime, op: O) -> Self {
        self.invocations.push((pid, time, op));
        self
    }

    /// Appends an invocation (non-builder form).
    pub fn push(&mut self, pid: ProcessId, time: SimTime, op: O) {
        self.invocations.push((pid, time, op));
    }

    /// Number of scripted invocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// `true` when the script is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }
}

impl<O> Default for Script<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: Clone, R> Driver<O, R> for Script<O> {
    fn initial(&mut self) -> Vec<(ProcessId, SimTime, O)> {
        self.invocations.clone()
    }

    fn next(
        &mut self,
        _pid: ProcessId,
        _op: &O,
        _resp: &R,
        _now: SimTime,
    ) -> Option<(SimDuration, O)> {
        None
    }
}

/// Draws an index from `0..weights.len()` proportionally to `weights`.
///
/// Helper for operation-mix generators ("80% reads, 20% writes").
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng>(weights: &[u32], rng: &mut R) -> usize {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    assert!(total > 0, "weights must not be empty or all zero");
    let mut pick = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if pick < w {
            return i;
        }
        pick -= w;
    }
    unreachable!("weighted_index: pick exceeded total weight")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_issues_quota() {
        let procs = vec![ProcessId::new(0), ProcessId::new(1)];
        let mut d = ClosedLoop::new(procs, 3, 1, |_pid, idx, _rng| idx as u32);
        let initial = Driver::<u32, ()>::initial(&mut d);
        assert_eq!(initial.len(), 2);
        // p0 completes all three.
        let mut count = 1;
        let mut last = initial[0].2;
        while let Some((_, op)) =
            Driver::<u32, ()>::next(&mut d, ProcessId::new(0), &last, &(), SimTime::ZERO)
        {
            last = op;
            count += 1;
        }
        assert_eq!(count, 3);
        assert_eq!(last, 2);
    }

    #[test]
    fn closed_loop_zero_quota_idle() {
        let mut d = ClosedLoop::new(vec![ProcessId::new(0)], 0, 1, |_p, _i, _r| 0u32);
        assert!(Driver::<u32, ()>::initial(&mut d).is_empty());
    }

    #[test]
    fn closed_loop_ignores_unknown_process() {
        let mut d = ClosedLoop::new(vec![ProcessId::new(0)], 5, 1, |_p, _i, _r| 0u32);
        let _ = Driver::<u32, ()>::initial(&mut d);
        assert_eq!(
            Driver::<u32, ()>::next(&mut d, ProcessId::new(9), &0, &(), SimTime::ZERO),
            None
        );
    }

    #[test]
    fn script_replays_invocations() {
        let mut s = Script::new()
            .at(ProcessId::new(0), SimTime::from_ticks(5), "a")
            .at(ProcessId::new(1), SimTime::from_ticks(9), "b");
        let initial = Driver::<&str, ()>::initial(&mut s);
        assert_eq!(initial.len(), 2);
        assert_eq!(initial[1].1, SimTime::from_ticks(9));
        assert_eq!(
            Driver::<&str, ()>::next(&mut s, ProcessId::new(0), &"a", &(), SimTime::ZERO),
            None
        );
    }

    #[test]
    fn weighted_index_respects_zero_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let i = weighted_index(&[0, 5, 0, 7], &mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_index_rejects_all_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = weighted_index(&[0, 0], &mut rng);
    }
}
