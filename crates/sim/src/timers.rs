//! Generation-stamped slab allocation for timer ids.
//!
//! The engine used to track timer liveness with two `HashSet<TimerId>`s
//! (`pending` and `cancelled`), paying a SipHash lookup-or-insert on
//! every set, cancel and expiry. Timer churn is proportional to event
//! count in every timer-driven protocol (Algorithm 1 arms a timer per
//! operation), so those hashes sat directly on the hot path.
//!
//! A [`TimerSlab`] replaces them with the classic generational-index
//! scheme: a [`TimerId`] packs `(generation << 32) | slot`, and a timer
//! is live exactly while its slot's current generation matches the id's.
//! Cancelling bumps the generation — the already-queued expiry event
//! then fails the match and is dropped when popped. Every operation is
//! a bounds check plus an integer compare: no hashing, no tombstone
//! sets, and slots recycle through a free list so memory stays
//! proportional to the number of *concurrently* pending timers, not the
//! total ever set.

use crate::ids::TimerId;

const SLOT_BITS: u32 = 32;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    live: bool,
}

/// Allocator and liveness oracle for [`TimerId`]s.
///
/// # Examples
///
/// ```
/// use skewbound_sim::timers::TimerSlab;
///
/// let mut slab = TimerSlab::new();
/// let a = slab.alloc();
/// assert!(slab.cancel(a));
/// assert!(!slab.fire(a), "cancelled timers do not fire");
///
/// let b = slab.alloc(); // recycles a's slot under a new generation
/// assert_ne!(a, b);
/// assert!(slab.fire(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        TimerSlab::default()
    }

    /// Creates an empty slab with room for `capacity` concurrently
    /// pending timers before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TimerSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Allocates a fresh live timer id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` timers are pending at once.
    pub fn alloc(&mut self) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX concurrently pending timers");
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        TimerId::new((u64::from(generation) << SLOT_BITS) | u64::from(slot))
    }

    /// Cancels a live timer. Returns `false` (a no-op) if the id is
    /// stale — already fired, already cancelled, or never allocated.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.retire(id)
    }

    /// Marks a timer as fired and retires its slot. Returns `false` if
    /// the id is stale (the timer was cancelled after its expiry event
    /// was queued) — the caller must then drop the event.
    pub fn fire(&mut self, id: TimerId) -> bool {
        self.retire(id)
    }

    /// Number of currently live (pending) timers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn retire(&mut self, id: TimerId) -> bool {
        let raw = id.as_u64();
        let slot = (raw & SLOT_MASK) as u32;
        #[allow(clippy::cast_possible_truncation)]
        let generation = (raw >> SLOT_BITS) as u32;
        let Some(s) = self.slots.get_mut(slot as usize) else {
            return false;
        };
        if !s.live || s.generation != generation {
            return false;
        }
        s.live = false;
        // A wrapped generation could collide with a stale id only after
        // 2^32 reuses of one slot while that id is still queued —
        // impossible within the engine's event cap.
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_consumes_the_id() {
        let mut slab = TimerSlab::new();
        let id = slab.alloc();
        assert_eq!(slab.pending(), 1);
        assert!(slab.fire(id));
        assert!(!slab.fire(id), "double fire must fail");
        assert_eq!(slab.pending(), 0);
    }

    #[test]
    fn cancel_prevents_fire_and_recycles() {
        let mut slab = TimerSlab::new();
        let a = slab.alloc();
        assert!(slab.cancel(a));
        assert!(!slab.cancel(a), "double cancel is a no-op");
        assert!(!slab.fire(a), "cancelled timer must not fire");
        let b = slab.alloc();
        assert_ne!(a, b, "recycled slot carries a new generation");
        assert!(slab.fire(b));
        assert!(!slab.fire(a), "stale id stays dead after slot reuse");
    }

    #[test]
    fn unknown_ids_are_noops() {
        let mut slab = TimerSlab::new();
        assert!(!slab.cancel(TimerId::new(99)));
        assert!(!slab.fire(TimerId::new(u64::MAX)));
    }

    #[test]
    fn many_concurrent_timers_distinct() {
        let mut slab = TimerSlab::new();
        let ids: Vec<_> = (0..100).map(|_| slab.alloc()).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
        assert_eq!(slab.pending(), 100);
        for id in ids {
            assert!(slab.fire(id));
        }
        assert_eq!(slab.pending(), 0);
    }
}
