//! Generation-stamped slab allocation for timer ids.
//!
//! The engine used to track timer liveness with two `HashSet<TimerId>`s
//! (`pending` and `cancelled`), paying a SipHash lookup-or-insert on
//! every set, cancel and expiry. Timer churn is proportional to event
//! count in every timer-driven protocol (Algorithm 1 arms a timer per
//! operation), so those hashes sat directly on the hot path.
//!
//! A [`TimerSlab`] replaces them with the classic generational-index
//! scheme: a [`TimerId`] packs `(generation << 32) | slot`, and a timer
//! is live exactly while its slot's current generation matches the id's.
//! Cancelling bumps the generation — the already-queued expiry event
//! then fails the match and is dropped when popped. Every operation is
//! a bounds check plus an integer compare: no hashing, no tombstone
//! sets, and slots recycle through a free list so memory stays
//! proportional to the number of *concurrently* pending timers, not the
//! total ever set.

use crate::ids::TimerId;

#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    live: bool,
}

/// Allocator and liveness oracle for [`TimerId`]s.
///
/// # Examples
///
/// ```
/// use skewbound_sim::timers::TimerSlab;
///
/// let mut slab = TimerSlab::new();
/// let a = slab.alloc();
/// assert!(slab.cancel(a));
/// assert!(!slab.fire(a), "cancelled timers do not fire");
///
/// let b = slab.alloc(); // recycles a's slot under a new generation
/// assert_ne!(a, b);
/// assert!(slab.fire(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Slots permanently retired because their generation counter
    /// saturated (see [`TimerSlab::retire`] — recycling such a slot would
    /// wrap the generation back to zero and resurrect stale ids).
    exhausted: usize,
}

impl TimerSlab {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        TimerSlab::default()
    }

    /// Creates an empty slab with room for `capacity` concurrently
    /// pending timers before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TimerSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            exhausted: 0,
        }
    }

    /// Allocates a fresh live timer id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` timers are pending at once.
    pub fn alloc(&mut self) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].live = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX concurrently pending timers");
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        TimerId::from_parts(generation, slot)
    }

    /// Cancels a live timer. Returns `false` (a no-op) if the id is
    /// stale — already fired, already cancelled, or never allocated.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.retire(id)
    }

    /// Marks a timer as fired and retires its slot. Returns `false` if
    /// the id is stale (the timer was cancelled after its expiry event
    /// was queued) — the caller must then drop the event.
    pub fn fire(&mut self, id: TimerId) -> bool {
        self.retire(id)
    }

    /// `true` while the timer is pending: allocated, not yet fired, not
    /// cancelled. Unlike [`TimerSlab::fire`] this does not consume the
    /// id, so schedulers can filter stale expiry events without retiring
    /// live ones.
    #[must_use]
    pub fn is_live(&self, id: TimerId) -> bool {
        self.slots
            .get(id.slot() as usize)
            .is_some_and(|s| s.live && s.generation == id.generation())
    }

    /// Number of currently live (pending) timers.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.slots.len() - self.free.len() - self.exhausted
    }

    fn retire(&mut self, id: TimerId) -> bool {
        let slot = id.slot();
        let Some(s) = self.slots.get_mut(slot as usize) else {
            return false;
        };
        if !s.live || s.generation != id.generation() {
            return false;
        }
        s.live = false;
        if s.generation == u32::MAX {
            // Bumping would wrap the generation back to 0, and a stale id
            // minted for this slot's generation 0 (if one were still
            // queued) would match again. Saturate instead: the slot is
            // retired permanently and never re-enters the free list.
            debug_assert!(
                self.exhausted < self.slots.len(),
                "more exhausted slots than slots"
            );
            self.exhausted += 1;
            return true;
        }
        s.generation += 1;
        self.free.push(slot);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_consumes_the_id() {
        let mut slab = TimerSlab::new();
        let id = slab.alloc();
        assert_eq!(slab.pending(), 1);
        assert!(slab.fire(id));
        assert!(!slab.fire(id), "double fire must fail");
        assert_eq!(slab.pending(), 0);
    }

    #[test]
    fn cancel_prevents_fire_and_recycles() {
        let mut slab = TimerSlab::new();
        let a = slab.alloc();
        assert!(slab.cancel(a));
        assert!(!slab.cancel(a), "double cancel is a no-op");
        assert!(!slab.fire(a), "cancelled timer must not fire");
        let b = slab.alloc();
        assert_ne!(a, b, "recycled slot carries a new generation");
        assert!(slab.fire(b));
        assert!(!slab.fire(a), "stale id stays dead after slot reuse");
    }

    #[test]
    fn unknown_ids_are_noops() {
        let mut slab = TimerSlab::new();
        assert!(!slab.cancel(TimerId::new(99)));
        assert!(!slab.fire(TimerId::new(u64::MAX)));
    }

    #[test]
    fn is_live_tracks_lifecycle_without_consuming() {
        let mut slab = TimerSlab::new();
        let a = slab.alloc();
        assert!(slab.is_live(a));
        assert!(slab.is_live(a), "is_live must not retire the timer");
        assert!(slab.fire(a));
        assert!(!slab.is_live(a));
        let b = slab.alloc();
        assert!(slab.is_live(b));
        assert!(slab.cancel(b));
        assert!(!slab.is_live(b));
        assert!(!slab.is_live(TimerId::new(u64::MAX)));
    }

    /// Forces a slot's generation counter to its maximum and checks the
    /// saturating retirement: the exhausted slot never re-enters the free
    /// list, so a wrapped generation can never resurrect a stale id.
    #[test]
    fn generation_wrap_saturates_the_slot() {
        let mut slab = TimerSlab::new();
        let a = slab.alloc(); // slot 0, generation 0
        assert!(slab.fire(a));
        // Fast-forward the recycled slot to the last generation.
        slab.slots[0].generation = u32::MAX;
        let b = slab.alloc();
        assert_eq!(b.slot(), 0, "free list recycles slot 0");
        assert_eq!(slab.pending(), 1);
        assert!(slab.fire(b));
        assert_eq!(slab.pending(), 0, "exhausted slot is not counted pending");
        // The slot is permanently retired: a fresh alloc gets a new slot
        // instead of wrapping slot 0 back to generation 0.
        let c = slab.alloc();
        assert_eq!(c.slot(), 1, "slot 0 must not be recycled");
        assert!(slab.is_live(c));
        // Ids minted for slot 0 stay dead forever, including the id that
        // a generation-0 wraparound would have resurrected.
        let resurrected = TimerId::new(0); // slot 0, generation 0
        assert!(!slab.fire(resurrected));
        assert!(!slab.cancel(b));
        assert!(slab.fire(c));
    }

    #[test]
    fn many_concurrent_timers_distinct() {
        let mut slab = TimerSlab::new();
        let ids: Vec<_> = (0..100).map(|_| slab.alloc()).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
        assert_eq!(slab.pending(), 100);
        for id in ids {
            assert!(slab.fire(id));
        }
        assert_eq!(slab.pending(), 0);
    }
}
