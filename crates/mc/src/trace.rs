//! JSON-lines trace emission: the [`TraceSink`] that turns engine
//! events and per-stage counters into one [`crate::json`] value per
//! line (DESIGN.md §9).
//!
//! The sink buffers lines in memory; callers write the buffer wherever
//! they like (`skewlint --trace <path>` writes it next to the foil
//! certificates). Every line is an object with a `"kind"` field — the
//! seven engine kinds (`invoke`, `respond`, `send`, `deliver`,
//! `timer-set`, `timer-fire`, `timer-cancel`) plus `counter` for stage
//! counters — so a reader can dispatch on one key without a schema in
//! hand. Lines parse back through [`crate::json::parse`], which is how
//! CI validates the trace artifact, and the offline auditor
//! (`skewbound_lint::audit`, `skewlint audit`) consumes the same
//! format.

use skewbound_sim::prelude::{TraceEvent, TraceEventKind, TraceSink};

use crate::json::{obj, Json};

/// Clamp-converting number constructor: trace magnitudes are tick
/// counts and ids far below `i64::MAX`, but the JSON layer is `i64`.
fn num_u64(v: u64) -> Json {
    Json::Num(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Converts one engine event to its JSON-lines object.
///
/// Common fields: `kind` (stable label), `at` (real time, ticks),
/// `clock` (local clock reading of `pid` at `at`), `pid`. Kind-specific
/// fields follow the variant payloads.
#[must_use]
pub fn event_json(event: &TraceEvent) -> Json {
    let mut members = vec![
        ("kind", Json::Str(event.kind.label().to_owned())),
        ("at", num_u64(event.at.as_ticks())),
        ("clock", Json::Num(event.clock.as_ticks())),
        ("pid", Json::Num(i64::from(event.pid.as_u32()))),
    ];
    match &event.kind {
        TraceEventKind::Invoke { op } => members.push(("op", Json::Str(op.clone()))),
        TraceEventKind::Respond { resp } => members.push(("resp", Json::Str(resp.clone()))),
        TraceEventKind::Send { to, msg, payload } => {
            members.push(("to", Json::Num(i64::from(to.as_u32()))));
            members.push(("msg", num_u64(msg.as_u64())));
            members.push(("payload", Json::Str(payload.clone())));
        }
        TraceEventKind::Recv { from, msg } => {
            members.push(("from", Json::Num(i64::from(from.as_u32()))));
            members.push(("msg", num_u64(msg.as_u64())));
        }
        TraceEventKind::TimerSet { id, tag, delay } => {
            members.push(("timer", num_u64(id.as_u64())));
            members.push(("tag", Json::Str(tag.clone())));
            members.push(("delay", num_u64(delay.as_ticks())));
        }
        TraceEventKind::Timer { id, tag } => {
            members.push(("timer", num_u64(id.as_u64())));
            members.push(("tag", Json::Str(tag.clone())));
        }
        TraceEventKind::TimerCancel { id } => {
            members.push(("timer", num_u64(id.as_u64())));
        }
    }
    obj(members)
}

/// A [`TraceSink`] that renders every event and counter as one compact
/// JSON object per line.
#[derive(Debug, Default)]
pub struct JsonLinesSink {
    buf: String,
    events: u64,
}

impl JsonLinesSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of engine events written so far (counter lines excluded).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The buffered JSON-lines text.
    #[must_use]
    pub fn lines(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the buffered JSON-lines text.
    #[must_use]
    pub fn into_string(self) -> String {
        self.buf
    }

    fn push_line(&mut self, value: &Json) {
        self.buf.push_str(&value.compact());
        self.buf.push('\n');
    }
}

impl TraceSink for JsonLinesSink {
    fn event(&mut self, event: &TraceEvent) {
        self.events += 1;
        self.push_line(&event_json(event));
    }

    fn counter(&mut self, stage: &'static str, name: &'static str, value: u64) {
        self.push_line(&obj([
            ("kind", Json::Str("counter".to_owned())),
            ("stage", Json::Str(stage.to_owned())),
            ("name", Json::Str(name.to_owned())),
            ("value", num_u64(value)),
        ]));
    }
}

/// A clonable handle to one shared [`JsonLinesSink`].
///
/// [`crate::explore::replay_traced`] takes its sink by `Box<dyn
/// TraceSink>`, so a caller that wants the buffered lines back keeps a
/// second handle: every clone writes to the same underlying buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedJsonLinesSink(std::rc::Rc<std::cell::RefCell<JsonLinesSink>>);

impl SharedJsonLinesSink {
    /// Creates a sink with an empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of engine events written so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.0.borrow().events()
    }

    /// A copy of the buffered JSON-lines text.
    #[must_use]
    pub fn text(&self) -> String {
        self.0.borrow().lines().to_owned()
    }
}

impl TraceSink for SharedJsonLinesSink {
    fn event(&mut self, event: &TraceEvent) {
        self.0.borrow_mut().event(event);
    }

    fn counter(&mut self, stage: &'static str, name: &'static str, value: u64) {
        self.0.borrow_mut().counter(stage, name, value);
    }
}

/// Parses a JSON-lines trace back into values, one per non-empty line.
/// Errors carry the 1-based line number.
pub use skewbound_lint::json::parse_lines;

#[cfg(test)]
mod tests {
    use skewbound_sim::prelude::*;

    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent {
            at: SimTime::from_ticks(6600),
            clock: ClockTime::from_ticks(5000),
            pid: ProcessId::new(1),
            kind: TraceEventKind::Recv {
                from: ProcessId::new(0),
                msg: MsgId::new(3),
            },
        }
    }

    #[test]
    fn events_render_one_parseable_line_each() {
        let mut sink = JsonLinesSink::new();
        sink.event(&sample_event());
        sink.event(&TraceEvent {
            at: SimTime::from_ticks(0),
            clock: ClockTime::from_ticks(0),
            pid: ProcessId::new(0),
            kind: TraceEventKind::Invoke {
                op: "Write(1)".into(),
            },
        });
        assert_eq!(sink.events(), 2);
        let parsed = parse_lines(sink.lines()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0].get("kind").and_then(Json::as_str),
            Some("deliver")
        );
        assert_eq!(parsed[0].get("at").and_then(Json::as_num), Some(6600));
        assert_eq!(parsed[0].get("clock").and_then(Json::as_num), Some(5000));
        assert_eq!(parsed[0].get("from").and_then(Json::as_num), Some(0));
        assert_eq!(parsed[0].get("msg").and_then(Json::as_num), Some(3));
        assert_eq!(parsed[1].get("op").and_then(Json::as_str), Some("Write(1)"));
    }

    #[test]
    fn counters_render_as_counter_lines() {
        let mut sink = JsonLinesSink::new();
        sink.counter("check", "nodes", 42);
        let parsed = parse_lines(sink.lines()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed[0].get("kind").and_then(Json::as_str),
            Some("counter")
        );
        assert_eq!(parsed[0].get("stage").and_then(Json::as_str), Some("check"));
        assert_eq!(parsed[0].get("name").and_then(Json::as_str), Some("nodes"));
        assert_eq!(parsed[0].get("value").and_then(Json::as_num), Some(42));
        assert_eq!(sink.events(), 0, "counter lines are not engine events");
    }

    #[test]
    fn every_kind_serializes_with_its_payload_fields() {
        let kinds: Vec<(TraceEventKind, &str, &str)> = vec![
            (TraceEventKind::Invoke { op: "w".into() }, "invoke", "op"),
            (
                TraceEventKind::Respond { resp: "ok".into() },
                "respond",
                "resp",
            ),
            (
                TraceEventKind::Send {
                    to: ProcessId::new(2),
                    msg: MsgId::new(7),
                    payload: "m".into(),
                },
                "send",
                "payload",
            ),
            (
                TraceEventKind::Recv {
                    from: ProcessId::new(2),
                    msg: MsgId::new(7),
                },
                "deliver",
                "from",
            ),
            (
                TraceEventKind::TimerSet {
                    id: TimerId::new(4),
                    tag: "hold".into(),
                    delay: SimDuration::from_ticks(9),
                },
                "timer-set",
                "delay",
            ),
            (
                TraceEventKind::Timer {
                    id: TimerId::new(4),
                    tag: "hold".into(),
                },
                "timer-fire",
                "tag",
            ),
            (
                TraceEventKind::TimerCancel {
                    id: TimerId::new(4),
                },
                "timer-cancel",
                "timer",
            ),
        ];
        for (kind, label, field) in kinds {
            let json = event_json(&TraceEvent {
                at: SimTime::from_ticks(1),
                clock: ClockTime::from_ticks(1),
                pid: ProcessId::new(0),
                kind,
            });
            assert_eq!(json.get("kind").and_then(Json::as_str), Some(label));
            assert!(json.get(field).is_some(), "{label} missing {field}");
        }
    }

    #[test]
    fn shared_sink_clones_write_one_buffer() {
        let shared = SharedJsonLinesSink::new();
        let mut handle: Box<dyn TraceSink> = Box::new(shared.clone());
        handle.event(&sample_event());
        handle.counter("mc", "schedules", 5);
        drop(handle);
        assert_eq!(shared.events(), 1);
        let parsed = parse_lines(&shared.text()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parse_lines_reports_the_offending_line() {
        let err = parse_lines("{\"kind\":\"invoke\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
