//! What the model checker needs to know about an implementation,
//! beyond the [`Actor`] interface.
//!
//! The explorer reorders *deliveries*, and its partial-order reduction
//! rests on knowing which operation a message carries (two same-replica
//! deliveries commute when their payload operations commute on the probe
//! states). The per-run protocol invariants additionally want each
//! replica's executed timestamp order, for implementations that keep
//! one. [`ModelActor`] surfaces both without widening [`Actor`] itself.

use skewbound_core::foils::{Gossip, LocalFirstReplica};
use skewbound_core::replica::{OpMsg, Replica};
use skewbound_core::timestamp::Timestamp;
use skewbound_sim::actor::Actor;
use skewbound_spec::seqspec::SequentialSpec;

/// An [`Actor`] the model checker can explore: its messages expose the
/// operation they carry, and (optionally) its executed order is
/// inspectable after a run.
pub trait ModelActor: Actor {
    /// The sequential specification the implementation claims to
    /// linearize.
    type Spec: SequentialSpec<Op = Self::Op, Resp = Self::Resp>;

    /// The operation a message carries, if any. Used for the commuting-
    /// delivery independence check; returning `None` makes deliveries of
    /// this message conservatively dependent on everything at the same
    /// process.
    fn payload_op(msg: &Self::Msg) -> Option<&Self::Op>;

    /// The timestamps this replica has executed, in execution order —
    /// `None` for implementations that do not keep one (the timestamp
    /// invariants are then vacuous).
    fn executed_order(&self) -> Option<&[Timestamp]> {
        None
    }
}

impl<S: SequentialSpec> ModelActor for Replica<S> {
    type Spec = S;

    fn payload_op(msg: &Self::Msg) -> Option<&Self::Op> {
        let OpMsg { op, .. } = msg;
        Some(op)
    }

    fn executed_order(&self) -> Option<&[Timestamp]> {
        Some(Replica::executed_order(self))
    }
}

impl<S: SequentialSpec> ModelActor for LocalFirstReplica<S> {
    type Spec = S;

    fn payload_op(msg: &Self::Msg) -> Option<&Self::Op> {
        let Gossip { op, .. } = msg;
        Some(op)
    }
}
