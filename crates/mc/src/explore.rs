//! The stateful explorer: every delivery order, every delay corner,
//! every clock corner — pruned by dynamic partial-order reduction.
//!
//! [`skewbound_shift::exhaustive_probe`] enumerates delay and clock
//! assignments but leaves same-time events in the engine's deterministic
//! FIFO order. This module closes that gap: a [`SchedulePolicy`] replays
//! a recorded choice prefix and branches over every order of same-time
//! event batches, turning the engine into a stateless model checker
//! (re-execution instead of state snapshots, in the Verisoft tradition).
//!
//! Exploration is pruned with **sleep sets**: after the branch executing
//! event `a` before its sibling `b` has been fully explored, the branch
//! that defers `a` keeps `a` asleep until some executed event is
//! *dependent* with it — if `a` is still asleep when it would run, the
//! interleaving is a commutation of one already checked and the run is
//! abandoned ([`SimError::PolicyAbort`]). Independence is structural
//! (events at different processes commute; the engine applies them to
//! disjoint actors) plus semantic: two same-process deliveries commute
//! when their payload operations commute on every probe state
//! ([`immediately_non_commuting`] finds no witness). The semantic check
//! is an approximation on the probe set — see `DESIGN.md §8` for why
//! this is used as a *reduction* only in tandem with batches that are
//! conservatively re-branched whenever any pair is dependent.
//!
//! Every run additionally passes through the linearizability checker and
//! the [`skewbound_core::invariants`] protocol invariants; violations
//! carry a replayable coordinate (`clock × delays × choices`) that
//! [`minimize`] shrinks to a locally-minimal failing configuration for
//! certificate emission.

use skewbound_core::invariants::{check_invariants, standard_invariants, RunView};
use skewbound_core::params::Params;
use skewbound_lin::checker::{check_history_stats, CheckLimits, CheckOutcome};
use skewbound_shift::exhaustive::{
    verify_send_order_independence, AssignmentExhausted, EnumeratedDelay,
};
use skewbound_sim::clock::ClockAssignment;
use skewbound_sim::engine::{EventView, ScheduleDecision, SchedulePolicy, SimError, Simulation};
use skewbound_sim::history::History;
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::{SimDuration, SimTime};
use skewbound_sim::trace::TraceSink;
use skewbound_spec::classify::immediately_non_commuting;
use skewbound_spec::seqspec::SequentialSpec;

use crate::model::ModelActor;

/// The independence relation the explorer prunes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Independence {
    /// Structural + commuting-delivery independence (the real relation).
    Dpor,
    /// Nothing is independent: every same-time batch branches over every
    /// order. Exists so the DPOR reduction is *measurable* — explored
    /// schedule counts under [`Independence::Dpor`] must come out
    /// strictly smaller on any scenario with concurrent deliveries.
    Naive,
}

/// Grid, limits and relation for [`model_check`].
#[derive(Debug, Clone)]
pub struct McConfig<S: SequentialSpec> {
    /// Delay values each message may take (all within `[d − u, d]`).
    pub delay_choices: Vec<SimDuration>,
    /// Clock assignments to explore (all within skew `ε`).
    pub clock_choices: Vec<ClockAssignment>,
    /// Probe states for the commuting-delivery independence check.
    pub probe_states: Vec<S::State>,
    /// The independence relation ([`Independence::Dpor`] normally).
    pub independence: Independence,
    /// Hard cap on executed schedules across the whole exploration.
    pub max_schedules: u64,
    /// Limits for the per-run linearizability check.
    pub check_limits: CheckLimits,
    /// Stop at the first violating run instead of exploring on.
    pub stop_at_first_violation: bool,
}

impl<S: SequentialSpec> McConfig<S> {
    /// Endpoint delays `{d − u, d}` and `±ε`-corner clocks, mirroring
    /// [`skewbound_shift::exhaustive::ExhaustiveConfig::corners`]: the
    /// shifting proofs construct their adversarial runs at exactly these
    /// corners.
    #[must_use]
    pub fn corners(params: &Params, probe_states: Vec<S::State>) -> Self {
        let bounds = params.delay_bounds();
        let n = params.n();
        let eps = params.eps();
        let mut clock_choices = vec![ClockAssignment::zero(n)];
        for pid in ProcessId::all(n) {
            clock_choices.push(ClockAssignment::single_late(n, pid, eps));
            let mut ahead = ClockAssignment::zero(n);
            ahead.shift(pid, i64::try_from(eps.as_ticks()).expect("eps fits"));
            clock_choices.push(ahead);
        }
        McConfig {
            delay_choices: vec![bounds.min(), bounds.max()],
            clock_choices,
            probe_states,
            independence: Independence::Dpor,
            max_schedules: 1_000_000,
            check_limits: CheckLimits::default(),
            stop_at_first_violation: false,
        }
    }
}

/// Why one explored run was rejected (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The history admits no legal linearization.
    NotLinearizable,
    /// An operation never received a response at quiescence.
    IncompleteHistory,
    /// A protocol invariant failed (`skewbound_core::invariants`).
    Invariant {
        /// The invariant's stable name.
        name: String,
        /// The first violation's evidence.
        detail: String,
    },
}

impl ViolationKind {
    /// Stable machine-matchable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::NotLinearizable => "not-linearizable",
            ViolationKind::IncompleteHistory => "incomplete-history",
            ViolationKind::Invariant { .. } => "invariant",
        }
    }

    /// `true` when `other` is the same *kind* of failure (for invariant
    /// violations: the same invariant, details may differ). Minimization
    /// shrinks a counterexample only while the kind is preserved.
    #[must_use]
    pub fn same_kind(&self, other: &ViolationKind) -> bool {
        match (self, other) {
            (
                ViolationKind::Invariant { name: a, .. },
                ViolationKind::Invariant { name: b, .. },
            ) => a == b,
            _ => self.label() == other.label(),
        }
    }
}

impl core::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ViolationKind::NotLinearizable => write!(f, "history is not linearizable"),
            ViolationKind::IncompleteHistory => {
                write!(f, "an operation never responded (incomplete history)")
            }
            ViolationKind::Invariant { name, detail } => {
                write!(f, "protocol invariant {name} violated: {detail}")
            }
        }
    }
}

/// Verdict of a single (re-)executed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// Linearizable and every invariant held.
    Clean,
    /// The sleep set proved the run a commutation of one already
    /// explored; it was abandoned unchecked.
    Pruned,
    /// The run requested more delays than the enumerated assignment
    /// covers — it left the enumerated space and proves nothing.
    OffSpace(AssignmentExhausted),
    /// The linearizability checker hit its node limit.
    Unknown,
    /// A genuine violation.
    Violation(ViolationKind),
}

/// A replayable coordinate of one violating run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McViolation {
    /// Index into [`McConfig::clock_choices`].
    pub clock_idx: usize,
    /// Per-message indices into [`McConfig::delay_choices`], in global
    /// send order.
    pub delay_digits: Vec<usize>,
    /// Branch taken at each schedule choice point, in order.
    pub choices: Vec<usize>,
    /// What failed.
    pub kind: ViolationKind,
}

/// What [`model_check`] explored and found.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Messages per run (delay-assignment dimensionality).
    pub messages: usize,
    /// `clock × delay` grid cells visited.
    pub cells: u64,
    /// Schedules executed (including pruned ones).
    pub schedules: u64,
    /// Schedules the sleep sets abandoned as redundant.
    pub pruned: u64,
    /// Runs that left the enumerated delay space.
    pub off_space: u64,
    /// Runs the linearizability checker could not decide.
    pub unknown: u64,
    /// Exploration hit [`McConfig::max_schedules`] before finishing.
    pub capped: bool,
    /// Every violating run found (first per cell under
    /// `stop_at_first_violation`).
    pub violations: Vec<McViolation>,
}

impl McReport {
    /// `true` when the whole explored space is violation-free and fully
    /// decided.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.violations.is_empty() && self.unknown == 0 && !self.capped
    }
}

/// Sleep-set key: what we must remember about an event to decide
/// dependence later, after its `EventView` is gone.
#[derive(Debug, Clone)]
enum EvKey<Op> {
    Invoke(ProcessId),
    Timer(ProcessId),
    Deliver(ProcessId, Option<Op>),
}

impl<Op> EvKey<Op> {
    fn pid(&self) -> ProcessId {
        match self {
            EvKey::Invoke(p) | EvKey::Timer(p) | EvKey::Deliver(p, _) => *p,
        }
    }
}

fn key_of<A: ModelActor>(ev: &EventView<'_, A>) -> EvKey<A::Op> {
    match ev {
        EventView::Invoke { pid, .. } => EvKey::Invoke(*pid),
        EventView::Timer { pid, .. } => EvKey::Timer(*pid),
        EventView::Deliver { pid, msg, .. } => EvKey::Deliver(*pid, A::payload_op(msg).cloned()),
        // A coalesced batch carries several payload ops; keep the key
        // payload-free so the dependence check stays conservative (a
        // `None` payload is never proven commuting).
        EventView::DeliverBatch { pid, .. } => EvKey::Deliver(*pid, None),
    }
}

/// The dependence relation. Sound over-approximation: anything not
/// provably commuting is dependent.
fn dependent<S: SequentialSpec>(
    independence: Independence,
    spec: &S,
    states: &[S::State],
    a: &EvKey<S::Op>,
    b: &EvKey<S::Op>,
) -> bool {
    if independence == Independence::Naive {
        return true;
    }
    if a.pid() != b.pid() {
        // The engine dispatches each event to exactly one actor; events
        // at different processes touch disjoint state and commute. (Their
        // *sends* enqueue with the same delays either way.)
        return false;
    }
    if let (EvKey::Deliver(_, Some(x)), EvKey::Deliver(_, Some(y))) = (a, b) {
        // Same process, both deliveries: commuting payload operations
        // reach the same replica state in either order.
        return immediately_non_commuting(
            spec,
            states,
            core::slice::from_ref(x),
            core::slice::from_ref(y),
        )
        .is_some();
    }
    true
}

/// One schedule choice point: how many alternatives the policy saw, and
/// which it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Non-sleeping candidates in the batch.
    pub alts: usize,
    /// Index of the branch taken.
    pub chosen: usize,
}

/// A [`SchedulePolicy`] that replays a choice prefix, defaults to the
/// first alternative beyond it, and maintains the sleep set.
struct ReplayPolicy<'a, S: SequentialSpec> {
    spec: &'a S,
    states: &'a [S::State],
    independence: Independence,
    plan: &'a [usize],
    depth: usize,
    trace: Vec<ChoicePoint>,
    sleep: Vec<(u64, EvKey<S::Op>)>,
}

impl<'a, S: SequentialSpec> ReplayPolicy<'a, S> {
    fn new(
        spec: &'a S,
        states: &'a [S::State],
        independence: Independence,
        plan: &'a [usize],
    ) -> Self {
        ReplayPolicy {
            spec,
            states,
            independence,
            plan,
            depth: 0,
            trace: Vec::new(),
            sleep: Vec::new(),
        }
    }
}

impl<A> SchedulePolicy<A> for ReplayPolicy<'_, A::Spec>
where
    A: ModelActor,
{
    fn choose(&mut self, _now: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
        let keys: Vec<EvKey<A::Op>> = enabled.iter().map(key_of::<A>).collect();
        let cands: Vec<usize> = (0..enabled.len())
            .filter(|&i| !self.sleep.iter().any(|(seq, _)| *seq == enabled[i].seq()))
            .collect();
        if cands.is_empty() {
            // Every enabled event is asleep: any continuation is a
            // commutation of an already-explored schedule.
            return ScheduleDecision::Abort;
        }
        let pick = if cands.len() == 1 {
            0
        } else {
            let branching = cands.iter().enumerate().any(|(i, &a)| {
                cands[i + 1..].iter().any(|&b| {
                    dependent(
                        self.independence,
                        self.spec,
                        self.states,
                        &keys[a],
                        &keys[b],
                    )
                })
            });
            if branching {
                let chosen = if self.depth < self.plan.len() {
                    self.plan[self.depth]
                } else {
                    0
                };
                if chosen >= cands.len() {
                    // The plan no longer fits the run's branching
                    // structure. Unreachable from `model_check` (plans
                    // are prefixes of recorded traces and replays are
                    // deterministic), but `minimize` probes perturbed
                    // plans — a divergent trial is simply abandoned.
                    return ScheduleDecision::Abort;
                }
                self.depth += 1;
                self.trace.push(ChoicePoint {
                    alts: cands.len(),
                    chosen,
                });
                // Earlier siblings were (or will have been) fully explored
                // by branches to our left: they go to sleep.
                for &ci in &cands[..chosen] {
                    self.sleep.push((enabled[ci].seq(), keys[ci].clone()));
                }
                chosen
            } else {
                // Whole batch pairwise-independent: one order suffices.
                0
            }
        };
        let chosen_idx = cands[pick];
        let chosen_key = keys[chosen_idx].clone();
        // Executing an event wakes every sleeping event dependent with it
        // (their orders relative to it now matter again).
        self.sleep.retain(|(seq, key)| {
            *seq != enabled[chosen_idx].seq()
                && !dependent(self.independence, self.spec, self.states, key, &chosen_key)
        });
        ScheduleDecision::Take(chosen_idx)
    }
}

/// One run's full result: verdict plus everything a certificate needs.
#[derive(Debug)]
pub struct RunOutcome<S: SequentialSpec> {
    /// The verdict.
    pub verdict: RunVerdict,
    /// The observed history.
    pub history: History<S::Op, S::Resp>,
    /// Every choice point the run passed through, in order (the replayed
    /// plan prefix plus default-first decisions beyond it).
    pub trace: Vec<ChoicePoint>,
}

impl<S: SequentialSpec> RunOutcome<S> {
    /// The branch taken at each choice point — a plan that replays this
    /// exact run.
    #[must_use]
    pub fn choices(&self) -> Vec<usize> {
        self.trace.iter().map(|cp| cp.chosen).collect()
    }
}

fn decode_digits(mut code: u64, base: usize, len: usize) -> Vec<usize> {
    let mut digits = vec![0usize; len];
    for d in digits.iter_mut() {
        *d = usize::try_from(code % base as u64).expect("digit fits");
        code /= base as u64;
    }
    digits
}

#[allow(clippy::too_many_arguments)]
fn run_one<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clocks: &ClockAssignment,
    digits: &[usize],
    plan: &[usize],
) -> RunOutcome<A::Spec>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    run_one_with_sink(
        spec,
        make_actors,
        params,
        script,
        config,
        clocks,
        digits,
        plan,
        None,
    )
    .0
}

/// [`run_one`] with an optional engine [`TraceSink`]: every engine event
/// streams into the sink, and after the run the linearizability
/// checker's `"check"`-stage counters (`nodes`, `memo_hits`,
/// `max_frontier_depth`) are emitted into it too. The sink is returned
/// so callers can keep writing (model-checker counters, file output).
#[allow(clippy::too_many_arguments)]
fn run_one_with_sink<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clocks: &ClockAssignment,
    digits: &[usize],
    plan: &[usize],
    sink: Option<Box<dyn TraceSink>>,
) -> (RunOutcome<A::Spec>, Option<Box<dyn TraceSink>>)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let bounds = params.delay_bounds();
    let assignment: Vec<SimDuration> = digits.iter().map(|&d| config.delay_choices[d]).collect();
    let mut sim = Simulation::new(
        make_actors(),
        clocks.clone(),
        EnumeratedDelay::new(bounds, assignment),
    );
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    for (pid, at, op) in script {
        sim.schedule_invoke(*pid, *at, op.clone());
    }
    let mut policy =
        ReplayPolicy::<A::Spec>::new(spec, &config.probe_states, config.independence, plan);
    let result = sim.run_scheduled(&mut policy);
    let trace = policy.trace;
    let mut check_stats = None;
    let verdict = match result {
        Err(SimError::PolicyAbort) => RunVerdict::Pruned,
        Err(e) => panic!("model-checked run failed: {e}"),
        Ok(_) => {
            let history = sim.history();
            if let Err(exhausted) = sim.delays().check_exhausted() {
                RunVerdict::OffSpace(exhausted)
            } else if !history.is_complete() {
                RunVerdict::Violation(ViolationKind::IncompleteHistory)
            } else if history.len() > 128 {
                RunVerdict::Unknown
            } else {
                let (outcome, stats) = check_history_stats(spec, history, config.check_limits);
                check_stats = Some(stats);
                match outcome {
                    CheckOutcome::NotLinearizable(_) => {
                        RunVerdict::Violation(ViolationKind::NotLinearizable)
                    }
                    CheckOutcome::Unknown { .. } => RunVerdict::Unknown,
                    CheckOutcome::Linearizable(_) => {
                        let executed_orders: Vec<_> = ProcessId::all(params.n())
                            .filter_map(|pid| sim.actor(pid).executed_order().map(<[_]>::to_vec))
                            .collect();
                        let view = RunView {
                            params,
                            spec,
                            history,
                            executed_orders: &executed_orders,
                        };
                        let violations = check_invariants(&view, &standard_invariants());
                        match violations.into_iter().next() {
                            Some(v) => RunVerdict::Violation(ViolationKind::Invariant {
                                name: v.invariant.to_owned(),
                                detail: v.detail,
                            }),
                            None => RunVerdict::Clean,
                        }
                    }
                }
            }
        }
    };
    let mut sink = sim.take_trace_sink();
    if let (Some(sink), Some(stats)) = (sink.as_deref_mut(), check_stats) {
        sink.counter("check", "nodes", stats.nodes);
        sink.counter("check", "memo_hits", stats.memo_hits);
        sink.counter("check", "max_frontier_depth", stats.max_frontier_depth);
    }
    (
        RunOutcome {
            verdict,
            history: sim.into_history(),
            trace,
        },
        sink,
    )
}

/// Re-executes the single run a violation (or any coordinate) names.
#[allow(clippy::too_many_arguments)]
pub fn replay<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clock_idx: usize,
    delay_digits: &[usize],
    choices: &[usize],
) -> RunOutcome<A::Spec>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    run_one(
        spec,
        make_actors,
        params,
        script,
        config,
        &config.clock_choices[clock_idx],
        delay_digits,
        choices,
    )
}

/// [`replay`] with a [`TraceSink`] attached to the engine: the run's
/// invocations, sends, deliveries, timer arms/firings and responses
/// stream into the sink (stamped with real time, local clock reading
/// and process id), followed by the `"check"`-stage counters of the
/// replay's linearizability check. Returns the sink for further writes.
#[allow(clippy::too_many_arguments)]
pub fn replay_traced<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clock_idx: usize,
    delay_digits: &[usize],
    choices: &[usize],
    sink: Box<dyn TraceSink>,
) -> (RunOutcome<A::Spec>, Box<dyn TraceSink>)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let (outcome, sink) = run_one_with_sink(
        spec,
        make_actors,
        params,
        script,
        config,
        &config.clock_choices[clock_idx],
        delay_digits,
        choices,
        Some(sink),
    );
    (outcome, sink.expect("engine returns the attached sink"))
}

/// Explores every `(clock, delay assignment, schedule)` combination of
/// the scripted scenario, checking each run's history against `spec` and
/// the protocol invariants.
///
/// # Panics
///
/// Panics if the send pattern is delay-dependent (the enumerated grid
/// would be unsound — verified up front exactly as in
/// [`skewbound_shift::exhaustive_probe`]), or if the delay grid exceeds
/// `u64` cells.
pub fn model_check<A, F>(
    spec: &A::Spec,
    make_actors: F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
) -> McReport
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    assert!(!config.delay_choices.is_empty(), "need delay choices");
    assert!(!config.clock_choices.is_empty(), "need clock choices");
    let bounds = params.delay_bounds();
    let messages =
        verify_send_order_independence(&make_actors, &config.clock_choices[0], bounds, script)
            .unwrap_or_else(|divergence| panic!("{divergence}"));

    let c = config.delay_choices.len() as u64;
    let assignments = c
        .checked_pow(u32::try_from(messages).expect("too many messages"))
        .expect("delay grid exceeds u64");

    let mut report = McReport {
        messages,
        cells: 0,
        schedules: 0,
        pruned: 0,
        off_space: 0,
        unknown: 0,
        capped: false,
        violations: Vec::new(),
    };

    'grid: for (clock_idx, clocks) in config.clock_choices.iter().enumerate() {
        for code in 0..assignments {
            report.cells += 1;
            let digits = decode_digits(code, config.delay_choices.len(), messages);
            // Depth-first over schedule choice points within this cell.
            let mut plan: Vec<usize> = Vec::new();
            loop {
                if report.schedules >= config.max_schedules {
                    report.capped = true;
                    break 'grid;
                }
                let outcome = run_one(
                    spec,
                    &make_actors,
                    params,
                    script,
                    config,
                    clocks,
                    &digits,
                    &plan,
                );
                report.schedules += 1;
                let run_choices = outcome.choices();
                match outcome.verdict {
                    RunVerdict::Clean => {}
                    RunVerdict::Pruned => report.pruned += 1,
                    RunVerdict::OffSpace(_) => report.off_space += 1,
                    RunVerdict::Unknown => report.unknown += 1,
                    RunVerdict::Violation(kind) => {
                        report.violations.push(McViolation {
                            clock_idx,
                            delay_digits: digits.clone(),
                            choices: run_choices,
                            kind,
                        });
                        if config.stop_at_first_violation {
                            break 'grid;
                        }
                    }
                }
                // Backtrack: advance the deepest choice point that still
                // has an unexplored alternative; the prefix above it is
                // kept, everything below falls back to default-first.
                match next_plan(&outcome.trace) {
                    Some(next) => plan = next,
                    None => break,
                }
            }
        }
    }
    report
}

fn next_plan(trace: &[ChoicePoint]) -> Option<Vec<usize>> {
    for depth in (0..trace.len()).rev() {
        let cp = trace[depth];
        if cp.chosen + 1 < cp.alts {
            let mut plan: Vec<usize> = trace[..depth].iter().map(|c| c.chosen).collect();
            plan.push(cp.chosen + 1);
            return Some(plan);
        }
    }
    None
}

/// Shrinks a violation to a locally-minimal failing configuration of the
/// *same kind*: the shortest failing choice prefix, with every surviving
/// choice as small as possible and every delay digit reset to the
/// default (last delay choice, i.e. `d`) where the failure allows.
///
/// Delta-debugging by re-execution: every candidate reduction is
/// re-run, and kept only if the violation kind is preserved.
pub fn minimize<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    violation: &McViolation,
) -> McViolation
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    minimize_counted(spec, make_actors, params, script, config, violation).0
}

/// [`minimize`] plus the number of delta-debugging steps it took: one
/// step per candidate reduction re-executed (kept or not). The count
/// feeds the `"mc"`-stage `delta_debug_steps` trace counter and the
/// certificate's `explored` block.
pub fn minimize_counted<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    violation: &McViolation,
) -> (McViolation, u64)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let kind = &violation.kind;
    let steps = core::cell::Cell::new(0u64);
    let still_fails = |digits: &[usize], choices: &[usize]| -> bool {
        steps.set(steps.get() + 1);
        let outcome = run_one(
            spec,
            make_actors,
            params,
            script,
            config,
            &config.clock_choices[violation.clock_idx],
            digits,
            choices,
        );
        matches!(&outcome.verdict, RunVerdict::Violation(k) if k.same_kind(kind))
    };
    let default_digit = config.delay_choices.len() - 1;
    let mut digits = violation.delay_digits.clone();
    let mut choices = violation.choices.clone();
    // Each pass is monotone (only shrinks); iterate to a fixpoint with a
    // hard round bound as a backstop.
    for _round in 0..8 {
        let mut changed = false;
        // 1. Shortest failing choice prefix (the suffix falls back to
        //    the policy's default-first decisions).
        for k in 0..choices.len() {
            if still_fails(&digits, &choices[..k]) {
                choices.truncate(k);
                changed = true;
                break;
            }
        }
        // 2. Smallest branch index per surviving choice point.
        for i in 0..choices.len() {
            while choices[i] > 0 {
                let mut trial = choices.clone();
                trial[i] -= 1;
                if still_fails(&digits, &trial) {
                    choices = trial;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        // 3. Default delay (`d`) per message where the failure survives.
        for i in 0..digits.len() {
            if digits[i] != default_digit {
                let mut trial = digits.clone();
                trial[i] = default_digit;
                if still_fails(&trial, &choices) {
                    digits = trial;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (
        McViolation {
            clock_idx: violation.clock_idx,
            delay_digits: digits,
            choices,
            kind: kind.clone(),
        },
        steps.get(),
    )
}
