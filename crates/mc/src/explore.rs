//! The stateful explorer: every delivery order, every delay corner,
//! every clock corner — pruned by dynamic partial-order reduction.
//!
//! [`skewbound_shift::exhaustive_probe`] enumerates delay and clock
//! assignments but leaves same-time events in the engine's deterministic
//! FIFO order. This module closes that gap: a [`SchedulePolicy`] replays
//! a recorded choice prefix and branches over every order of same-time
//! event batches, turning the engine into a stateless model checker
//! (re-execution instead of state snapshots, in the Verisoft tradition).
//!
//! Exploration is pruned with **sleep sets**: after the branch executing
//! event `a` before its sibling `b` has been fully explored, the branch
//! that defers `a` keeps `a` asleep until some executed event is
//! *dependent* with it — if `a` is still asleep when it would run, the
//! interleaving is a commutation of one already checked and the run is
//! abandoned ([`SimError::PolicyAbort`]). Independence is structural
//! (events at different processes commute; the engine applies them to
//! disjoint actors) plus semantic: two same-process deliveries commute
//! when their payload operations commute on every probe state
//! ([`immediately_non_commuting`] finds no witness). The semantic check
//! is an approximation on the probe set — see `DESIGN.md §8` for why
//! this is used as a *reduction* only in tandem with batches that are
//! conservatively re-branched whenever any pair is dependent.
//!
//! Every run additionally passes through the linearizability checker and
//! the [`skewbound_core::invariants`] protocol invariants; violations
//! carry a replayable coordinate (`clock × delays × choices`) that
//! [`minimize`] shrinks to a locally-minimal failing configuration for
//! certificate emission.

use skewbound_core::invariants::{check_invariants, standard_invariants, RunView};
use skewbound_core::params::Params;
use skewbound_lin::checker::{check_history_stats, CheckLimits, CheckOutcome};
use skewbound_shift::exhaustive::{
    verify_send_order_independence, AssignmentExhausted, EnumeratedDelay,
};
use skewbound_sim::clock::ClockAssignment;
use skewbound_sim::engine::{EventView, ScheduleDecision, SchedulePolicy, SimError, Simulation};
use skewbound_sim::history::History;
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::{SimDuration, SimTime};
use skewbound_sim::trace::TraceSink;
use skewbound_spec::classify::immediately_non_commuting;
use skewbound_spec::seqspec::SequentialSpec;

use crate::model::ModelActor;
use crate::table::{CachedVerdict, TranspositionTable};

/// The independence relation the explorer prunes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Independence {
    /// Structural + commuting-delivery independence (the real relation).
    Dpor,
    /// Nothing is independent: every same-time batch branches over every
    /// order. Exists so the DPOR reduction is *measurable* — explored
    /// schedule counts under [`Independence::Dpor`] must come out
    /// strictly smaller on any scenario with concurrent deliveries.
    Naive,
}

/// Grid, limits and relation for [`model_check`].
#[derive(Debug, Clone)]
pub struct McConfig<S: SequentialSpec> {
    /// Delay values each message may take (all within `[d − u, d]`).
    pub delay_choices: Vec<SimDuration>,
    /// Clock assignments to explore (all within skew `ε`).
    pub clock_choices: Vec<ClockAssignment>,
    /// Probe states for the commuting-delivery independence check.
    pub probe_states: Vec<S::State>,
    /// The independence relation ([`Independence::Dpor`] normally).
    pub independence: Independence,
    /// Hard cap on executed schedules across the whole exploration.
    pub max_schedules: u64,
    /// Limits for the per-run linearizability check.
    pub check_limits: CheckLimits,
    /// Stop at the first violating run instead of exploring on.
    pub stop_at_first_violation: bool,
    /// Worker threads for the exploration frontier. `None` defers to the
    /// environment (`SKEWBOUND_THREADS` / `SKEWBOUND_PAR`, one per core
    /// otherwise — see [`skewbound_sim::par`]); `Some(1)` forces the
    /// sequential path. The report is bit-identical either way.
    pub workers: Option<usize>,
}

impl<S: SequentialSpec> McConfig<S> {
    /// Endpoint delays `{d − u, d}` and `±ε`-corner clocks, mirroring
    /// [`skewbound_shift::exhaustive::ExhaustiveConfig::corners`]: the
    /// shifting proofs construct their adversarial runs at exactly these
    /// corners.
    #[must_use]
    pub fn corners(params: &Params, probe_states: Vec<S::State>) -> Self {
        let bounds = params.delay_bounds();
        let n = params.n();
        let eps = params.eps();
        let mut clock_choices = vec![ClockAssignment::zero(n)];
        for pid in ProcessId::all(n) {
            clock_choices.push(ClockAssignment::single_late(n, pid, eps));
            let mut ahead = ClockAssignment::zero(n);
            ahead.shift(pid, i64::try_from(eps.as_ticks()).expect("eps fits"));
            clock_choices.push(ahead);
        }
        McConfig {
            delay_choices: vec![bounds.min(), bounds.max()],
            clock_choices,
            probe_states,
            independence: Independence::Dpor,
            max_schedules: 1_000_000,
            check_limits: CheckLimits::default(),
            stop_at_first_violation: false,
            workers: None,
        }
    }
}

/// Why one explored run was rejected (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// The history admits no legal linearization.
    NotLinearizable,
    /// An operation never received a response at quiescence.
    IncompleteHistory,
    /// A protocol invariant failed (`skewbound_core::invariants`).
    Invariant {
        /// The invariant's stable name.
        name: String,
        /// The first violation's evidence.
        detail: String,
    },
    /// The implementation's send pattern depends on message delays, so
    /// the enumerated delay grid does not cover its behaviours and no
    /// per-cell verdict is sound. Detected up front by
    /// [`verify_send_order_independence`] (two opposite-extreme dry
    /// runs); the whole exploration is abandoned with this single
    /// violation instead of aborting the process.
    SendOrderDivergence {
        /// The divergence diagnostic (first differing send, both
        /// orders, both counts).
        detail: String,
    },
}

impl ViolationKind {
    /// Stable machine-matchable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::NotLinearizable => "not-linearizable",
            ViolationKind::IncompleteHistory => "incomplete-history",
            ViolationKind::Invariant { .. } => "invariant",
            ViolationKind::SendOrderDivergence { .. } => "send-order-divergence",
        }
    }

    /// `true` when `other` is the same *kind* of failure (for invariant
    /// violations: the same invariant, details may differ). Minimization
    /// shrinks a counterexample only while the kind is preserved.
    #[must_use]
    pub fn same_kind(&self, other: &ViolationKind) -> bool {
        match (self, other) {
            (
                ViolationKind::Invariant { name: a, .. },
                ViolationKind::Invariant { name: b, .. },
            ) => a == b,
            _ => self.label() == other.label(),
        }
    }
}

impl core::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ViolationKind::NotLinearizable => write!(f, "history is not linearizable"),
            ViolationKind::IncompleteHistory => {
                write!(f, "an operation never responded (incomplete history)")
            }
            ViolationKind::Invariant { name, detail } => {
                write!(f, "protocol invariant {name} violated: {detail}")
            }
            ViolationKind::SendOrderDivergence { detail } => {
                write!(f, "send order depends on delays: {detail}")
            }
        }
    }
}

/// Verdict of a single (re-)executed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// Linearizable and every invariant held.
    Clean,
    /// The sleep set proved the run a commutation of one already
    /// explored; it was abandoned unchecked.
    Pruned,
    /// The run requested more delays than the enumerated assignment
    /// covers — it left the enumerated space and proves nothing.
    OffSpace(AssignmentExhausted),
    /// The linearizability checker hit its node limit.
    Unknown,
    /// A genuine violation.
    Violation(ViolationKind),
}

/// A replayable coordinate of one violating run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McViolation {
    /// Index into [`McConfig::clock_choices`].
    pub clock_idx: usize,
    /// Per-message indices into [`McConfig::delay_choices`], in global
    /// send order.
    pub delay_digits: Vec<usize>,
    /// Branch taken at each schedule choice point, in order.
    pub choices: Vec<usize>,
    /// What failed.
    pub kind: ViolationKind,
}

/// What [`model_check`] explored and found.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Messages per run (delay-assignment dimensionality).
    pub messages: usize,
    /// `clock × delay` grid cells visited.
    pub cells: u64,
    /// Schedules executed (including pruned ones).
    pub schedules: u64,
    /// Schedules the sleep sets abandoned as redundant.
    pub pruned: u64,
    /// Runs that left the enumerated delay space.
    pub off_space: u64,
    /// Runs the linearizability checker could not decide.
    pub unknown: u64,
    /// Exploration hit [`McConfig::max_schedules`] before finishing.
    pub capped: bool,
    /// Engine events executed across all completed (non-pruned) runs —
    /// the deterministic work measure behind
    /// [`McReport::explored_states_per_sec`].
    pub explored_states: u64,
    /// Every violating run found (first per cell under
    /// `stop_at_first_violation`), in canonical cell order: ascending
    /// clock index, then delay code, then DFS plan — the first entry is
    /// the lexicographically-least violating coordinate regardless of
    /// the worker count.
    pub violations: Vec<McViolation>,
    /// Wall-clock time of the exploration (advisory: not covered by the
    /// determinism contract, varies run to run).
    pub wall_nanos: u64,
    /// Worker threads the frontier actually used (advisory).
    pub workers: usize,
    /// Distinct precedence structures in the transposition table
    /// (advisory: thread-timing dependent when workers race).
    pub table_entries: u64,
    /// Linearizability checks served from the transposition table
    /// (advisory: thread-timing dependent).
    pub table_hits: u64,
}

impl McReport {
    /// `true` when the whole explored space is violation-free and fully
    /// decided.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.violations.is_empty() && self.unknown == 0 && !self.capped
    }

    /// Exploration throughput: engine events per wall-clock second.
    /// Advisory (derived from `wall_nanos`).
    #[must_use]
    pub fn explored_states_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.explored_states as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// `true` when `other` reports the same exploration *results*: every
    /// deterministic field matches (messages, cells, schedules, pruned,
    /// off-space, unknown, capped, explored states, violations). The
    /// advisory timing/table fields are deliberately excluded — this is
    /// the thread-count determinism contract.
    #[must_use]
    pub fn same_results(&self, other: &McReport) -> bool {
        self.messages == other.messages
            && self.cells == other.cells
            && self.schedules == other.schedules
            && self.pruned == other.pruned
            && self.off_space == other.off_space
            && self.unknown == other.unknown
            && self.capped == other.capped
            && self.explored_states == other.explored_states
            && self.violations == other.violations
    }
}

/// Sleep-set key: what we must remember about an event to decide
/// dependence later, after its `EventView` is gone.
#[derive(Debug, Clone)]
enum EvKey<Op> {
    Invoke(ProcessId),
    Timer(ProcessId),
    Deliver(ProcessId, Option<Op>),
}

impl<Op> EvKey<Op> {
    fn pid(&self) -> ProcessId {
        match self {
            EvKey::Invoke(p) | EvKey::Timer(p) | EvKey::Deliver(p, _) => *p,
        }
    }
}

fn key_of<A: ModelActor>(ev: &EventView<'_, A>) -> EvKey<A::Op> {
    match ev {
        EventView::Invoke { pid, .. } => EvKey::Invoke(*pid),
        EventView::Timer { pid, .. } => EvKey::Timer(*pid),
        EventView::Deliver { pid, msg, .. } => EvKey::Deliver(*pid, A::payload_op(msg).cloned()),
        // A coalesced batch carries several payload ops; keep the key
        // payload-free so the dependence check stays conservative (a
        // `None` payload is never proven commuting).
        EventView::DeliverBatch { pid, .. } => EvKey::Deliver(*pid, None),
    }
}

/// The dependence relation. Sound over-approximation: anything not
/// provably commuting is dependent.
fn dependent<S: SequentialSpec>(
    independence: Independence,
    spec: &S,
    states: &[S::State],
    a: &EvKey<S::Op>,
    b: &EvKey<S::Op>,
) -> bool {
    if independence == Independence::Naive {
        return true;
    }
    if a.pid() != b.pid() {
        // The engine dispatches each event to exactly one actor; events
        // at different processes touch disjoint state and commute. (Their
        // *sends* enqueue with the same delays either way.)
        return false;
    }
    if let (EvKey::Deliver(_, Some(x)), EvKey::Deliver(_, Some(y))) = (a, b) {
        // Same process, both deliveries: commuting payload operations
        // reach the same replica state in either order.
        return immediately_non_commuting(
            spec,
            states,
            core::slice::from_ref(x),
            core::slice::from_ref(y),
        )
        .is_some();
    }
    true
}

/// One schedule choice point: how many alternatives the policy saw, and
/// which it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoicePoint {
    /// Non-sleeping candidates in the batch.
    pub alts: usize,
    /// Index of the branch taken.
    pub chosen: usize,
}

/// A [`SchedulePolicy`] that replays a choice prefix, defaults to the
/// first alternative beyond it, and maintains the sleep set.
struct ReplayPolicy<'a, S: SequentialSpec> {
    spec: &'a S,
    states: &'a [S::State],
    independence: Independence,
    plan: &'a [usize],
    depth: usize,
    trace: Vec<ChoicePoint>,
    sleep: Vec<(u64, EvKey<S::Op>)>,
}

impl<'a, S: SequentialSpec> ReplayPolicy<'a, S> {
    fn new(
        spec: &'a S,
        states: &'a [S::State],
        independence: Independence,
        plan: &'a [usize],
    ) -> Self {
        ReplayPolicy {
            spec,
            states,
            independence,
            plan,
            depth: 0,
            trace: Vec::new(),
            sleep: Vec::new(),
        }
    }
}

impl<A> SchedulePolicy<A> for ReplayPolicy<'_, A::Spec>
where
    A: ModelActor,
{
    fn choose(&mut self, _now: SimTime, enabled: &[EventView<'_, A>]) -> ScheduleDecision {
        let keys: Vec<EvKey<A::Op>> = enabled.iter().map(key_of::<A>).collect();
        let cands: Vec<usize> = (0..enabled.len())
            .filter(|&i| !self.sleep.iter().any(|(seq, _)| *seq == enabled[i].seq()))
            .collect();
        if cands.is_empty() {
            // Every enabled event is asleep: any continuation is a
            // commutation of an already-explored schedule.
            return ScheduleDecision::Abort;
        }
        let pick = if cands.len() == 1 {
            0
        } else {
            let branching = cands.iter().enumerate().any(|(i, &a)| {
                cands[i + 1..].iter().any(|&b| {
                    dependent(
                        self.independence,
                        self.spec,
                        self.states,
                        &keys[a],
                        &keys[b],
                    )
                })
            });
            if branching {
                let chosen = if self.depth < self.plan.len() {
                    self.plan[self.depth]
                } else {
                    0
                };
                if chosen >= cands.len() {
                    // The plan no longer fits the run's branching
                    // structure. Unreachable from `model_check` (plans
                    // are prefixes of recorded traces and replays are
                    // deterministic), but `minimize` probes perturbed
                    // plans — a divergent trial is simply abandoned.
                    return ScheduleDecision::Abort;
                }
                self.depth += 1;
                self.trace.push(ChoicePoint {
                    alts: cands.len(),
                    chosen,
                });
                // Earlier siblings were (or will have been) fully explored
                // by branches to our left: they go to sleep.
                for &ci in &cands[..chosen] {
                    self.sleep.push((enabled[ci].seq(), keys[ci].clone()));
                }
                chosen
            } else {
                // Whole batch pairwise-independent: one order suffices.
                0
            }
        };
        let chosen_idx = cands[pick];
        let chosen_key = keys[chosen_idx].clone();
        // Executing an event wakes every sleeping event dependent with it
        // (their orders relative to it now matter again).
        self.sleep.retain(|(seq, key)| {
            *seq != enabled[chosen_idx].seq()
                && !dependent(self.independence, self.spec, self.states, key, &chosen_key)
        });
        ScheduleDecision::Take(chosen_idx)
    }
}

/// One run's full result: verdict plus everything a certificate needs.
#[derive(Debug)]
pub struct RunOutcome<S: SequentialSpec> {
    /// The verdict.
    pub verdict: RunVerdict,
    /// The observed history.
    pub history: History<S::Op, S::Resp>,
    /// Every choice point the run passed through, in order (the replayed
    /// plan prefix plus default-first decisions beyond it).
    pub trace: Vec<ChoicePoint>,
    /// Engine events the run executed (0 for pruned runs, whose engine
    /// report is discarded on abort).
    pub events: u64,
}

impl<S: SequentialSpec> RunOutcome<S> {
    /// The branch taken at each choice point — a plan that replays this
    /// exact run.
    #[must_use]
    pub fn choices(&self) -> Vec<usize> {
        self.trace.iter().map(|cp| cp.chosen).collect()
    }
}

/// Mixed-radix counter over delay assignments: digit `i` (index into
/// [`McConfig::delay_choices`]) for message `i`, least-significant digit
/// first. Replaces the old `base.pow(messages)` cell count, which
/// overflowed `u64` at 2 choices × 64 messages and panicked — the
/// counter enumerates the same codes in the same order without ever
/// materializing the grid size. With `base == 1` or `len == 0` there is
/// exactly one (all-zero / empty) assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DigitCounter {
    digits: Vec<usize>,
    base: usize,
}

impl DigitCounter {
    pub(crate) fn new(base: usize, len: usize) -> Self {
        assert!(base >= 1, "need at least one delay choice");
        DigitCounter {
            digits: vec![0; len],
            base,
        }
    }

    /// Resumes counting from a serialized position.
    pub(crate) fn from_digits(digits: Vec<usize>, base: usize) -> Self {
        assert!(base >= 1, "need at least one delay choice");
        assert!(
            digits.iter().all(|&d| d < base),
            "fringe cursor digit out of range for {base} delay choices"
        );
        DigitCounter { digits, base }
    }

    pub(crate) fn current(&self) -> &[usize] {
        &self.digits
    }

    /// Advances to the next assignment; `false` once every code has been
    /// produced (the counter wrapped back to all zeros).
    pub(crate) fn advance(&mut self) -> bool {
        for d in &mut self.digits {
            *d += 1;
            if *d < self.base {
                return true;
            }
            *d = 0;
        }
        false
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clocks: &ClockAssignment,
    digits: &[usize],
    plan: &[usize],
) -> RunOutcome<A::Spec>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    run_one_cached(
        spec,
        make_actors,
        params,
        script,
        config,
        clocks,
        digits,
        plan,
        None,
    )
}

/// [`run_one`] with an optional shared [`TranspositionTable`] serving
/// the linearizability verdict from memoized precedence structures.
/// Used by the parallel frontier; verdicts are identical with or
/// without the table (see `table`'s module docs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one_cached<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clocks: &ClockAssignment,
    digits: &[usize],
    plan: &[usize],
    table: Option<&TranspositionTable<A::Spec>>,
) -> RunOutcome<A::Spec>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    run_one_with_sink(
        spec,
        make_actors,
        params,
        script,
        config,
        clocks,
        digits,
        plan,
        None,
        table,
    )
    .0
}

/// [`run_one`] with an optional engine [`TraceSink`]: every engine event
/// streams into the sink, and after the run the linearizability
/// checker's `"check"`-stage counters (`nodes`, `memo_hits`,
/// `max_frontier_depth`) are emitted into it too. The sink is returned
/// so callers can keep writing (model-checker counters, file output).
#[allow(clippy::too_many_arguments)]
fn run_one_with_sink<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clocks: &ClockAssignment,
    digits: &[usize],
    plan: &[usize],
    sink: Option<Box<dyn TraceSink>>,
    table: Option<&TranspositionTable<A::Spec>>,
) -> (RunOutcome<A::Spec>, Option<Box<dyn TraceSink>>)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let bounds = params.delay_bounds();
    let assignment: Vec<SimDuration> = digits.iter().map(|&d| config.delay_choices[d]).collect();
    let mut sim = Simulation::new(
        make_actors(),
        clocks.clone(),
        EnumeratedDelay::new(bounds, assignment),
    );
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    for (pid, at, op) in script {
        sim.schedule_invoke(*pid, *at, op.clone());
    }
    let mut policy =
        ReplayPolicy::<A::Spec>::new(spec, &config.probe_states, config.independence, plan);
    let result = sim.run_scheduled(&mut policy);
    let trace = policy.trace;
    let mut check_stats = None;
    let mut events = 0u64;
    let verdict = match result {
        Err(SimError::PolicyAbort) => RunVerdict::Pruned,
        // Internal invariant: the engine only fails on its own limits;
        // name the coordinate so a grid-sized exploration is debuggable.
        Err(e) => panic!("model-checked run failed at delay digits {digits:?}, plan {plan:?}: {e}"),
        Ok(report) => {
            events = report.events;
            let history = sim.history();
            if let Err(exhausted) = sim.delays().check_exhausted() {
                RunVerdict::OffSpace(exhausted)
            } else if !history.is_complete() {
                RunVerdict::Violation(ViolationKind::IncompleteHistory)
            } else if history.len() > 128 {
                RunVerdict::Unknown
            } else {
                let lin_verdict = if let Some(table) = table {
                    table.check(spec, history, config.check_limits)
                } else {
                    let (outcome, stats) = check_history_stats(spec, history, config.check_limits);
                    check_stats = Some(stats);
                    match outcome {
                        CheckOutcome::Linearizable(_) => CachedVerdict::Linearizable,
                        CheckOutcome::NotLinearizable(_) => CachedVerdict::NotLinearizable,
                        CheckOutcome::Unknown { .. } => CachedVerdict::Unknown,
                    }
                };
                match lin_verdict {
                    CachedVerdict::NotLinearizable => {
                        RunVerdict::Violation(ViolationKind::NotLinearizable)
                    }
                    CachedVerdict::Unknown => RunVerdict::Unknown,
                    CachedVerdict::Linearizable => {
                        let executed_orders: Vec<_> = ProcessId::all(params.n())
                            .filter_map(|pid| sim.actor(pid).executed_order().map(<[_]>::to_vec))
                            .collect();
                        let view = RunView {
                            params,
                            spec,
                            history,
                            executed_orders: &executed_orders,
                        };
                        let violations = check_invariants(&view, &standard_invariants());
                        match violations.into_iter().next() {
                            Some(v) => RunVerdict::Violation(ViolationKind::Invariant {
                                name: v.invariant.to_owned(),
                                detail: v.detail,
                            }),
                            None => RunVerdict::Clean,
                        }
                    }
                }
            }
        }
    };
    let mut sink = sim.take_trace_sink();
    if let (Some(sink), Some(stats)) = (sink.as_deref_mut(), check_stats) {
        sink.counter("check", "nodes", stats.nodes);
        sink.counter("check", "memo_hits", stats.memo_hits);
        sink.counter("check", "max_frontier_depth", stats.max_frontier_depth);
    }
    (
        RunOutcome {
            verdict,
            history: sim.into_history(),
            trace,
            events,
        },
        sink,
    )
}

/// Re-executes the single run a violation (or any coordinate) names.
#[allow(clippy::too_many_arguments)]
pub fn replay<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clock_idx: usize,
    delay_digits: &[usize],
    choices: &[usize],
) -> RunOutcome<A::Spec>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    run_one(
        spec,
        make_actors,
        params,
        script,
        config,
        &config.clock_choices[clock_idx],
        delay_digits,
        choices,
    )
}

/// [`replay`] with a [`TraceSink`] attached to the engine: the run's
/// invocations, sends, deliveries, timer arms/firings and responses
/// stream into the sink (stamped with real time, local clock reading
/// and process id), followed by the `"check"`-stage counters of the
/// replay's linearizability check. Returns the sink for further writes.
#[allow(clippy::too_many_arguments)]
pub fn replay_traced<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clock_idx: usize,
    delay_digits: &[usize],
    choices: &[usize],
    sink: Box<dyn TraceSink>,
) -> (RunOutcome<A::Spec>, Box<dyn TraceSink>)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let (outcome, sink) = run_one_with_sink(
        spec,
        make_actors,
        params,
        script,
        config,
        &config.clock_choices[clock_idx],
        delay_digits,
        choices,
        Some(sink),
        None,
    );
    let sink = sink.unwrap_or_else(|| {
        // Internal invariant: `Simulation::take_trace_sink` always hands
        // back the sink we attached above.
        panic!(
            "engine dropped the trace sink replaying clock {clock_idx}, \
             delays {delay_digits:?}, choices {choices:?}"
        )
    });
    (outcome, sink)
}

/// Explores every `(clock, delay assignment, schedule)` combination of
/// the scripted scenario, checking each run's history against `spec` and
/// the protocol invariants.
///
/// Work is fanned out over the work-stealing frontier in
/// [`crate::frontier`] (worker count from [`McConfig::workers`], else
/// `SKEWBOUND_THREADS` / one per core) with a shared
/// [`TranspositionTable`]; results are merged in canonical cell order,
/// so the report is bit-identical at any thread count. A delay-dependent
/// send pattern (detected up front, as in
/// [`skewbound_shift::exhaustive_probe`]) yields a report with a single
/// [`ViolationKind::SendOrderDivergence`] violation instead of a panic,
/// and arbitrarily large delay grids are enumerated lazily — hitting
/// [`McConfig::max_schedules`] sets `capped` rather than overflowing.
///
/// # Panics
///
/// Panics if `config` has no delay or clock choices.
pub fn model_check<A, F>(
    spec: &A::Spec,
    make_actors: F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
) -> McReport
where
    A: ModelActor,
    A::Spec: Sync,
    <A::Spec as SequentialSpec>::State: Sync,
    <A::Spec as SequentialSpec>::Op: Send + Sync,
    <A::Spec as SequentialSpec>::Resp: Send + Sync,
    F: Fn() -> Vec<A> + Sync,
{
    crate::frontier::model_check_resumable(spec, &make_actors, params, script, config, None).0
}

/// Checks the send pattern and sizes the delay grid; `Err` carries the
/// ready-made divergence report.
pub(crate) fn preflight<A, F>(
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
) -> Result<usize, Box<McReport>>
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    assert!(!config.delay_choices.is_empty(), "need delay choices");
    assert!(!config.clock_choices.is_empty(), "need clock choices");
    let bounds = params.delay_bounds();
    match verify_send_order_independence(make_actors, &config.clock_choices[0], bounds, script) {
        Ok(messages) => Ok(messages),
        Err(divergence) => Err(Box::new(McReport {
            messages: 0,
            cells: 0,
            schedules: 0,
            pruned: 0,
            off_space: 0,
            unknown: 0,
            capped: false,
            explored_states: 0,
            violations: vec![McViolation {
                // The divergence is a property of the whole grid, not of
                // one cell; anchor it at the origin coordinate (which is
                // one of the two dry runs that exposed it).
                clock_idx: 0,
                delay_digits: Vec::new(),
                choices: Vec::new(),
                kind: ViolationKind::SendOrderDivergence {
                    detail: divergence.to_string(),
                },
            }],
            wall_nanos: 0,
            workers: 1,
            table_entries: 0,
            table_hits: 0,
        })),
    }
}

/// What exploring one work unit produced. A unit is a DFS subtree of one
/// grid cell: the cell's full schedule tree for a fresh cell, or the
/// subtree under a locked choice prefix for a split-off sibling.
#[derive(Debug)]
pub(crate) struct UnitOutcome {
    /// 1 when this unit counted its cell (a fresh cell that executed at
    /// least one run), 0 for split subtrees and untouched units.
    pub cells: u64,
    pub schedules: u64,
    pub pruned: u64,
    pub off_space: u64,
    pub unknown: u64,
    /// Engine events across the unit's completed runs.
    pub events: u64,
    pub violations: Vec<McViolation>,
    /// Set when the unit stopped on its schedule budget: the next plan
    /// the DFS would have run, and the lock depth it would run under.
    pub resume: Option<(Vec<usize>, usize)>,
    /// Depth-0 sibling subtrees split off for other workers: `(plan,
    /// lock_depth)` pairs, in ascending plan order.
    pub spawned: Vec<(Vec<usize>, usize)>,
}

/// Runs the DFS of one work unit: starts at `start_plan`, never
/// backtracks above `lock_depth` (those choice points belong to sibling
/// units), and stops after `budget` schedules. When `split` is set and
/// the unit owns a whole fresh cell whose first run branches at depth 0,
/// the siblings of the first branch are split off as new units instead
/// of being walked inline — the deterministic work-splitting rule (the
/// split depends only on the cell's first trace, never on thread
/// timing).
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_unit<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    clock_idx: usize,
    digits: &[usize],
    start_plan: &[usize],
    lock_depth: usize,
    budget: u64,
    table: Option<&TranspositionTable<A::Spec>>,
    split: bool,
) -> UnitOutcome
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let fresh = start_plan.is_empty() && lock_depth == 0;
    let mut out = UnitOutcome {
        cells: 0,
        schedules: 0,
        pruned: 0,
        off_space: 0,
        unknown: 0,
        events: 0,
        violations: Vec::new(),
        resume: None,
        spawned: Vec::new(),
    };
    let clocks = &config.clock_choices[clock_idx];
    let mut plan: Vec<usize> = start_plan.to_vec();
    let mut lock = lock_depth;
    let mut first = true;
    loop {
        if out.schedules >= budget {
            out.resume = Some((plan, lock));
            return out;
        }
        let outcome = run_one_cached(
            spec,
            make_actors,
            params,
            script,
            config,
            clocks,
            digits,
            &plan,
            table,
        );
        out.schedules += 1;
        out.events += outcome.events;
        if fresh {
            out.cells = 1;
        }
        if first && fresh && split {
            if let Some(cp0) = outcome.trace.first() {
                // The cell's first decision has siblings: hand them to
                // the frontier and keep only subtree 0 for ourselves.
                for j in 1..cp0.alts {
                    out.spawned.push((vec![j], 1));
                }
                if cp0.alts > 1 {
                    lock = 1;
                }
            }
        }
        first = false;
        let run_choices = outcome.choices();
        match outcome.verdict {
            RunVerdict::Clean => {}
            RunVerdict::Pruned => out.pruned += 1,
            RunVerdict::OffSpace(_) => out.off_space += 1,
            RunVerdict::Unknown => out.unknown += 1,
            RunVerdict::Violation(kind) => {
                out.violations.push(McViolation {
                    clock_idx,
                    delay_digits: digits.to_vec(),
                    choices: run_choices,
                    kind,
                });
                if config.stop_at_first_violation {
                    return out;
                }
            }
        }
        // Backtrack: advance the deepest choice point (at or below the
        // lock) that still has an unexplored alternative; the prefix
        // above it is kept, everything below falls back to
        // default-first.
        match next_plan_locked(&outcome.trace, lock) {
            Some(next) => plan = next,
            None => return out,
        }
    }
}

fn next_plan_locked(trace: &[ChoicePoint], lock_depth: usize) -> Option<Vec<usize>> {
    for depth in (lock_depth..trace.len()).rev() {
        let cp = trace[depth];
        if cp.chosen + 1 < cp.alts {
            let mut plan: Vec<usize> = trace[..depth].iter().map(|c| c.chosen).collect();
            plan.push(cp.chosen + 1);
            return Some(plan);
        }
    }
    None
}

/// Shrinks a violation to a locally-minimal failing configuration of the
/// *same kind*: the shortest failing choice prefix, with every surviving
/// choice as small as possible and every delay digit reset to the
/// default (last delay choice, i.e. `d`) where the failure allows.
///
/// Delta-debugging by re-execution: every candidate reduction is
/// re-run, and kept only if the violation kind is preserved.
pub fn minimize<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    violation: &McViolation,
) -> McViolation
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    minimize_counted(spec, make_actors, params, script, config, violation).0
}

/// [`minimize`] plus the number of delta-debugging steps it took: one
/// step per candidate reduction re-executed (kept or not). The count
/// feeds the `"mc"`-stage `delta_debug_steps` trace counter and the
/// certificate's `explored` block.
pub fn minimize_counted<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    violation: &McViolation,
) -> (McViolation, u64)
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let kind = &violation.kind;
    let steps = core::cell::Cell::new(0u64);
    let still_fails = |digits: &[usize], choices: &[usize]| -> bool {
        steps.set(steps.get() + 1);
        let outcome = run_one(
            spec,
            make_actors,
            params,
            script,
            config,
            &config.clock_choices[violation.clock_idx],
            digits,
            choices,
        );
        matches!(&outcome.verdict, RunVerdict::Violation(k) if k.same_kind(kind))
    };
    let default_digit = config.delay_choices.len() - 1;
    let mut digits = violation.delay_digits.clone();
    let mut choices = violation.choices.clone();
    // Each pass is monotone (only shrinks); iterate to a fixpoint with a
    // hard round bound as a backstop.
    for _round in 0..8 {
        let mut changed = false;
        // 1. Shortest failing choice prefix (the suffix falls back to
        //    the policy's default-first decisions).
        for k in 0..choices.len() {
            if still_fails(&digits, &choices[..k]) {
                choices.truncate(k);
                changed = true;
                break;
            }
        }
        // 2. Smallest branch index per surviving choice point.
        for i in 0..choices.len() {
            while choices[i] > 0 {
                let mut trial = choices.clone();
                trial[i] -= 1;
                if still_fails(&digits, &trial) {
                    choices = trial;
                    changed = true;
                } else {
                    break;
                }
            }
        }
        // 3. Default delay (`d`) per message where the failure survives.
        for i in 0..digits.len() {
            if digits[i] != default_digit {
                let mut trial = digits.clone();
                trial[i] = default_digit;
                if still_fails(&trial, &choices) {
                    digits = trial;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (
        McViolation {
            clock_idx: violation.clock_idx,
            delay_digits: digits,
            choices,
            kind: kind.clone(),
        },
        steps.get(),
    )
}
