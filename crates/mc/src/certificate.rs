//! Minimized counterexample certificates.
//!
//! A violation found by [`crate::explore::model_check`] is only as good
//! as its reproducibility: a [`Certificate`] pins down the exact run —
//! clock offsets, per-message delays in global send order, and the
//! branch taken at every schedule choice point — together with the
//! observed history and the violated property. [`certify`] first shrinks
//! the coordinate with [`crate::explore::minimize`], then re-executes it
//! once more and records whether the replay reproduced the violation
//! (`replay_confirmed`); for histories of at most eight operations a
//! non-linearizability verdict is additionally cross-checked against the
//! permutation brute-forcer.
//!
//! Certificates serialize to a stable JSON schema
//! (`skewbound-certificate/v1`) via the in-tree [`crate::json`] module;
//! [`validate_certificate`] re-parses a document and checks every
//! schema obligation, so CI can gate on emitted files without trusting
//! the emitter.

use skewbound_core::params::Params;
use skewbound_lin::checker::check_history_brute_force;
use skewbound_sim::clock::ClockAssignment;
use skewbound_sim::history::History;
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::SimTime;
use skewbound_spec::seqspec::SequentialSpec;

use crate::explore::{
    minimize_counted, replay, McConfig, McReport, McViolation, RunVerdict, ViolationKind,
};
use crate::json::{obj, parse, Json};
use crate::model::ModelActor;

/// The schema identifier every certificate carries.
pub const SCHEMA: &str = "skewbound-certificate/v1";

/// One operation of the violating history, with `Debug`-rendered
/// operation and response (the workspace serde is an inert stub, so
/// payloads are strings by design — certificates are evidence for
/// humans and replay coordinates for machines, not wire formats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertRecord {
    /// Invoking process.
    pub pid: u32,
    /// The operation, `Debug`-rendered.
    pub op: String,
    /// The response, `Debug`-rendered, if the operation completed.
    pub resp: Option<String>,
    /// Invocation real time, ticks.
    pub invoked_at: u64,
    /// Response real time, ticks, if completed.
    pub responded_at: Option<u64>,
}

/// A self-contained, replayable counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Object name (e.g. `"queue"`).
    pub object: String,
    /// Implementation name (e.g. `"local-first"`).
    pub implementation: String,
    /// `n` replicas.
    pub n: usize,
    /// Message delay upper bound `d`, ticks.
    pub d: u64,
    /// Delay uncertainty `u`, ticks.
    pub u: u64,
    /// Clock skew bound `ε`, ticks.
    pub eps: u64,
    /// The accessor/mutator trade-off knob `X`, ticks.
    pub x: u64,
    /// Per-process clock offsets, ticks (signed).
    pub clock_offsets: Vec<i64>,
    /// Per-message delays in global send order, ticks.
    pub delay_ticks: Vec<u64>,
    /// Branch taken at each schedule choice point.
    pub schedule_choices: Vec<usize>,
    /// Violation kind label (`not-linearizable`, `incomplete-history`,
    /// `invariant`, `send-order-divergence`).
    pub violation_kind: String,
    /// Human-readable account of the violation.
    pub violation_detail: String,
    /// The violating history.
    pub history: Vec<CertRecord>,
    /// The coordinate went through [`minimize`](crate::explore::minimize).
    pub minimized: bool,
    /// Re-executing the minimized coordinate reproduced the violation.
    pub replay_confirmed: bool,
    /// Schedules the surrounding exploration executed.
    pub schedules_explored: u64,
    /// Schedules the surrounding exploration pruned as redundant.
    pub schedules_pruned: u64,
    /// Candidate reductions [`minimize`](crate::explore::minimize) re-executed while shrinking
    /// this certificate's coordinate.
    pub delta_debug_steps: u64,
}

fn history_records<S: SequentialSpec>(history: &History<S::Op, S::Resp>) -> Vec<CertRecord> {
    history
        .records()
        .iter()
        .map(|rec| CertRecord {
            pid: u32::try_from(rec.pid.index()).expect("pid fits"),
            op: format!("{:?}", rec.op),
            resp: rec.resp().map(|r| format!("{r:?}")),
            invoked_at: rec.invoked_at.as_ticks(),
            responded_at: rec.responded_at().map(SimTime::as_ticks),
        })
        .collect()
}

/// Minimizes `violation`, replays the result for confirmation, and
/// packages everything as a [`Certificate`].
#[allow(clippy::too_many_arguments)]
pub fn certify<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    violation: &McViolation,
    object: &str,
    implementation: &str,
    report: &McReport,
) -> Certificate
where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let (min, delta_debug_steps) =
        minimize_counted(spec, make_actors, params, script, config, violation);
    let outcome = replay(
        spec,
        make_actors,
        params,
        script,
        config,
        min.clock_idx,
        &min.delay_digits,
        &min.choices,
    );
    let mut replay_confirmed =
        matches!(&outcome.verdict, RunVerdict::Violation(k) if k.same_kind(&min.kind));
    // Independent cross-check where the brute-forcer's cap allows it.
    if replay_confirmed
        && matches!(min.kind, ViolationKind::NotLinearizable)
        && outcome.history.is_complete()
        && outcome.history.len() <= 8
    {
        replay_confirmed = !check_history_brute_force(spec, &outcome.history);
    }
    let clocks: &ClockAssignment = &config.clock_choices[min.clock_idx];
    Certificate {
        object: object.to_owned(),
        implementation: implementation.to_owned(),
        n: params.n(),
        d: params.d().as_ticks(),
        u: params.u().as_ticks(),
        eps: params.eps().as_ticks(),
        x: params.x().as_ticks(),
        clock_offsets: ProcessId::all(params.n())
            .map(|pid| clocks.offset(pid).as_ticks())
            .collect(),
        delay_ticks: min
            .delay_digits
            .iter()
            .map(|&d| config.delay_choices[d].as_ticks())
            .collect(),
        schedule_choices: min.choices.clone(),
        violation_kind: min.kind.label().to_owned(),
        violation_detail: min.kind.to_string(),
        history: history_records::<A::Spec>(&outcome.history),
        minimized: true,
        replay_confirmed,
        schedules_explored: report.schedules,
        schedules_pruned: report.pruned,
        delta_debug_steps,
    }
}

impl Certificate {
    /// Serializes to the `skewbound-certificate/v1` JSON schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let num_u = |v: u64| Json::Num(i64::try_from(v).expect("ticks fit i64"));
        let num_us = |v: usize| Json::Num(i64::try_from(v).expect("count fits i64"));
        let doc = obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("object", Json::Str(self.object.clone())),
            ("implementation", Json::Str(self.implementation.clone())),
            (
                "params",
                obj([
                    ("n", num_us(self.n)),
                    ("d", num_u(self.d)),
                    ("u", num_u(self.u)),
                    ("eps", num_u(self.eps)),
                    ("x", num_u(self.x)),
                ]),
            ),
            (
                "clock_offsets",
                Json::Arr(self.clock_offsets.iter().map(|&o| Json::Num(o)).collect()),
            ),
            (
                "delay_ticks",
                Json::Arr(self.delay_ticks.iter().map(|&t| num_u(t)).collect()),
            ),
            (
                "schedule_choices",
                Json::Arr(self.schedule_choices.iter().map(|&c| num_us(c)).collect()),
            ),
            (
                "violation",
                obj([
                    ("kind", Json::Str(self.violation_kind.clone())),
                    ("detail", Json::Str(self.violation_detail.clone())),
                ]),
            ),
            (
                "history",
                Json::Arr(
                    self.history
                        .iter()
                        .map(|rec| {
                            obj([
                                ("pid", Json::Num(i64::from(rec.pid))),
                                ("op", Json::Str(rec.op.clone())),
                                ("resp", rec.resp.clone().map_or(Json::Null, Json::Str)),
                                ("invoked_at", num_u(rec.invoked_at)),
                                ("responded_at", rec.responded_at.map_or(Json::Null, num_u)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("minimized", Json::Bool(self.minimized)),
            ("replay_confirmed", Json::Bool(self.replay_confirmed)),
            (
                "explored",
                obj([
                    ("schedules", num_u(self.schedules_explored)),
                    ("pruned", num_u(self.schedules_pruned)),
                    ("delta_debug_steps", num_u(self.delta_debug_steps)),
                ]),
            ),
        ]);
        doc.pretty()
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    require(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn require_num(doc: &Json, key: &str) -> Result<i64, String> {
    require(doc, key)?
        .as_num()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn require_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    require(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn require_bool(doc: &Json, key: &str) -> Result<bool, String> {
    require(doc, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a boolean"))
}

/// Parses and schema-checks a certificate document, including the
/// cross-field obligations (delays within `[d − u, d]`, clock offsets
/// within `ε`, one offset per process, confirmed replay).
pub fn validate_certificate(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    if require_str(&doc, "schema")? != SCHEMA {
        return Err(format!(
            "schema is {:?}, expected {SCHEMA:?}",
            require_str(&doc, "schema")?
        ));
    }
    require_str(&doc, "object")?;
    require_str(&doc, "implementation")?;

    let params = require(&doc, "params")?;
    let n = require_num(params, "n")?;
    let d = require_num(params, "d")?;
    let u = require_num(params, "u")?;
    let eps = require_num(params, "eps")?;
    require_num(params, "x")?;
    if n < 2 {
        return Err(format!("params.n must be at least 2, got {n}"));
    }
    if !(0 < u && u <= d) {
        return Err(format!("params must satisfy 0 < u ≤ d, got u={u}, d={d}"));
    }

    let offsets = require_arr(&doc, "clock_offsets")?;
    let n_usize = usize::try_from(n).map_err(|_| format!("params.n does not fit usize: {n}"))?;
    if offsets.len() != n_usize {
        return Err(format!(
            "clock_offsets has {} entries for n={n} processes",
            offsets.len()
        ));
    }
    for (i, off) in offsets.iter().enumerate() {
        let off = off
            .as_num()
            .ok_or_else(|| format!("clock_offsets[{i}] must be a number"))?;
        if off.abs() > eps {
            return Err(format!(
                "clock_offsets[{i}] = {off} exceeds the skew bound ε = {eps}"
            ));
        }
    }

    for (i, ticks) in require_arr(&doc, "delay_ticks")?.iter().enumerate() {
        let t = ticks
            .as_num()
            .ok_or_else(|| format!("delay_ticks[{i}] must be a number"))?;
        if t < d - u || t > d {
            return Err(format!(
                "delay_ticks[{i}] = {t} outside the admissible [d − u, d] = [{}, {d}]",
                d - u
            ));
        }
    }

    for (i, c) in require_arr(&doc, "schedule_choices")?.iter().enumerate() {
        if c.as_num().is_none_or(|c| c < 0) {
            return Err(format!(
                "schedule_choices[{i}] must be a non-negative number"
            ));
        }
    }

    let violation = require(&doc, "violation")?;
    let kind = require_str(violation, "kind")?;
    if !matches!(
        kind,
        "not-linearizable" | "incomplete-history" | "invariant" | "send-order-divergence"
    ) {
        return Err(format!("unknown violation.kind {kind:?}"));
    }
    require_str(violation, "detail")?;

    let history = require_arr(&doc, "history")?;
    if history.is_empty() {
        return Err("history must not be empty".into());
    }
    for (i, rec) in history.iter().enumerate() {
        let pid = require_num(rec, "pid")?;
        if pid < 0 || pid >= n {
            return Err(format!("history[{i}].pid = {pid} out of range for n={n}"));
        }
        require_str(rec, "op")?;
        require_num(rec, "invoked_at")?;
        // resp / responded_at may be null (incomplete-history evidence).
        require(rec, "resp")?;
        require(rec, "responded_at")?;
    }

    require_bool(&doc, "minimized")?;
    if !require_bool(&doc, "replay_confirmed")? {
        return Err("replay_confirmed is false: the certificate does not reproduce".into());
    }

    let explored = require(&doc, "explored")?;
    require_num(explored, "schedules")?;
    require_num(explored, "pruned")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            object: "queue".into(),
            implementation: "local-first".into(),
            n: 3,
            d: 9_000,
            u: 2_400,
            eps: 1_600,
            x: 0,
            clock_offsets: vec![0, -1_600, 0],
            delay_ticks: vec![9_000, 6_600, 9_000],
            schedule_choices: vec![1, 0],
            violation_kind: "not-linearizable".into(),
            violation_detail: "history is not linearizable".into(),
            history: vec![
                CertRecord {
                    pid: 2,
                    op: "Enqueue(42)".into(),
                    resp: Some("Done".into()),
                    invoked_at: 0,
                    responded_at: Some(1_600),
                },
                CertRecord {
                    pid: 0,
                    op: "Dequeue".into(),
                    resp: Some("Empty".into()),
                    invoked_at: 40_000,
                    responded_at: Some(50_600),
                },
            ],
            minimized: true,
            replay_confirmed: true,
            schedules_explored: 128,
            schedules_pruned: 32,
            delta_debug_steps: 17,
        }
    }

    #[test]
    fn emitted_certificates_validate() {
        let text = sample().to_json();
        validate_certificate(&text).unwrap();
        assert!(text.contains("\"schema\": \"skewbound-certificate/v1\""));
        assert!(text.contains("\"replay_confirmed\": true"));
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let ok = sample();

        let mut unconfirmed = ok.clone();
        unconfirmed.replay_confirmed = false;
        assert!(validate_certificate(&unconfirmed.to_json())
            .unwrap_err()
            .contains("replay_confirmed"));

        let mut inadmissible = ok.clone();
        inadmissible.delay_ticks[0] = 9_001;
        assert!(validate_certificate(&inadmissible.to_json())
            .unwrap_err()
            .contains("admissible"));

        let mut skewed = ok.clone();
        skewed.clock_offsets[1] = -1_601;
        assert!(validate_certificate(&skewed.to_json())
            .unwrap_err()
            .contains("skew bound"));

        let mut wrong_arity = ok.clone();
        wrong_arity.clock_offsets.pop();
        assert!(validate_certificate(&wrong_arity.to_json())
            .unwrap_err()
            .contains("entries"));

        let mut bad_kind = ok;
        bad_kind.violation_kind = "mystery".into();
        assert!(validate_certificate(&bad_kind.to_json())
            .unwrap_err()
            .contains("violation.kind"));

        assert!(validate_certificate("{}").is_err());
        assert!(validate_certificate("not json").is_err());
    }
}
