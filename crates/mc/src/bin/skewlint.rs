//! `skewlint` — the protocol-invariant analyzer CI runs.
//!
//! Five gates, in order:
//!
//! 1. **Routing lints** (static): the declared operation classes of the
//!    register/queue/stack specifications are cross-checked against
//!    their behavior on the probe sets ([`skewbound_core::invariants::
//!    routing_lint`]). Honest specs must come back clean; a canned
//!    misrouted spec must be flagged (the lint itself is tested here,
//!    not trusted).
//! 2. **Rule registry** (static): the `SB0xx` rules of
//!    [`skewbound_lint::rules`] run over the honest specs (must be
//!    clean) and then over one seeded foil per rule (must be caught).
//!    Every catch is recorded as a canary in the machine-readable
//!    report.
//! 3. **Model checking** (honest): small register/queue/stack scenarios
//!    under Algorithm 1 are explored over every delay corner, clock
//!    corner and same-time delivery order. Zero violations expected;
//!    each scenario is explored under both the DPOR and the naive
//!    independence relation and the DPOR schedule count must be
//!    *strictly* smaller — the reduction is measured, not assumed.
//! 4. **Foils**: known-broken implementations must be caught, and each
//!    catch is shrunk to a minimized, replay-confirmed certificate,
//!    written to the output directory and schema-validated by re-parse.
//! 5. **Trace audit**: a real honest register run is traced and audited
//!    offline ([`skewbound_lint::audit`]) against the declared delivery
//!    window — it must be clean — and five synthesized foil traces
//!    (late delivery, orphan/duplicate messages, FIFO inversion, leaked
//!    timer, leaked payloads) must each trip their `SB1xx` rule. The
//!    combined rule report is written to `report.json` and re-validated
//!    against the `skewbound-lint-report/v1` schema.
//!
//! Usage: `skewlint [--smoke] [--out DIR] [--trace FILE]`, or one of
//! the subcommands:
//!
//! * `skewlint rules [--out DIR]` — only the static rule registry and
//!   the trace-audit canaries (gates 2 and 5), writing `report.json`
//!   and `honest.trace.jsonl` to the output directory.
//! * `skewlint audit FILE [--window D,U]` — audit an arbitrary
//!   JSON-lines trace; prints every diagnostic, a summary line, and
//!   `audit: OK` iff there are no error-severity findings (warnings do
//!   not fail the audit).
//!
//! `--smoke` trims the clock grid for CI latency; `--out` defaults to
//! `target/skewlint`; `--trace` additionally replays the first foil's
//! minimized counterexample with a JSON-lines trace sink attached,
//! writes the trace to `FILE`, and cross-checks it against the
//! certificate coordinates (DESIGN.md §9).
//! Exits nonzero (after finishing all gates) if any expectation fails;
//! the final line is `skewlint: OK` exactly when everything held.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use skewbound_core::foils::{eager_group, LocalFirstReplica};
use skewbound_core::invariants::routing_lint;
use skewbound_core::params::Params;
use skewbound_core::replica::Replica;
use skewbound_core::timestamp::Timestamp;
use skewbound_lint::audit::{audit_text, AuditConfig};
use skewbound_lint::diag::{validate_report, Report};
use skewbound_lint::rules::{
    AccessorPurityRule, CommutativityRule, NsBatchRule, PayloadLeakRule, Registry, RoutingRule,
    Rule, TimestampSeqRule,
};
use skewbound_mc::trace::parse_lines;
use skewbound_mc::{
    certify, minimize_counted, model_check, replay_traced, validate_certificate, Independence,
    McConfig, ModelActor, RunVerdict, SharedJsonLinesSink,
};
use skewbound_sim::clock::ClockAssignment;
use skewbound_sim::delay::FixedDelay;
use skewbound_sim::engine::{SimReport, Simulation};
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::{ClockTime, SimDuration, SimTime};
use skewbound_sim::trace::TraceSink;
use skewbound_spec::prelude::*;
use skewbound_spec::probes;

fn params() -> Params {
    Params::with_optimal_skew(
        3,
        SimDuration::from_ticks(9_000),
        SimDuration::from_ticks(2_400),
        SimDuration::ZERO,
    )
    .expect("valid parameters")
}

/// A register that misdeclares its read as a pure mutator — the lint
/// gate's canary.
#[derive(Debug, Clone, Default)]
struct MisroutedRegister;

impl SequentialSpec for MisroutedRegister {
    type State = i64;
    type Op = RmwOp;
    type Resp = RmwResp;

    fn initial(&self) -> i64 {
        0
    }
    fn apply(&self, state: &i64, op: &RmwOp) -> (i64, RmwResp) {
        RmwRegister::default().apply(state, op)
    }
    fn class(&self, _op: &RmwOp) -> OpClass {
        OpClass::PureMutator
    }
}

/// A counter that lies about commutativity: claims mixed Add/Read pairs
/// commute (they do not) and denies Add/Add commuting (they do) — the
/// `SB003` canary.
#[derive(Debug, Clone, Default)]
struct DeclLiarCounter;

impl SequentialSpec for DeclLiarCounter {
    type State = i64;
    type Op = CounterOp;
    type Resp = CounterResp;

    fn initial(&self) -> i64 {
        0
    }
    fn apply(&self, state: &i64, op: &CounterOp) -> (i64, CounterResp) {
        Counter::default().apply(state, op)
    }
    fn class(&self, op: &CounterOp) -> OpClass {
        Counter::default().class(op)
    }
    fn declares_commuting(&self, a: &CounterOp, b: &CounterOp) -> Option<bool> {
        match (a, b) {
            (CounterOp::Add(_), CounterOp::Add(_)) => Some(false),
            (CounterOp::Read, CounterOp::Read) => None,
            _ => Some(true),
        }
    }
}

/// A namespace whose keys are not independent: writing key 7 also
/// clobbers key 40, so batched application over distinct keys is
/// order-dependent — the `SB004` canary.
#[derive(Debug, Clone, Default)]
struct CrossTalkNs;

impl SequentialSpec for CrossTalkNs {
    type State = std::collections::BTreeMap<u64, i64>;
    type Op = NsOp<RmwOp>;
    type Resp = RmwResp;

    fn initial(&self) -> Self::State {
        std::collections::BTreeMap::new()
    }
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, RmwResp) {
        let ns = Namespace::new(RmwRegister::default());
        let (mut next, resp) = ns.apply(state, op);
        if op.key == 7 {
            if let RmwOp::Write(v) = op.op {
                next.insert(40, v);
            }
        }
        (next, resp)
    }
    fn class(&self, op: &Self::Op) -> OpClass {
        RmwRegister::default().class(&op.op)
    }
}

struct Gate {
    failures: u32,
}

impl Gate {
    fn expect(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            self.failures += 1;
            println!("  FAIL: {what}");
        }
    }
}

fn lint_gate(gate: &mut Gate) {
    println!("[1/5] routing lints");
    let clean_register = routing_lint(
        &RmwRegister::default(),
        &probes::register_states(),
        &probes::register_ops(),
    );
    gate.expect(clean_register.is_empty(), "register routing clean");
    let clean_queue = routing_lint(
        &Queue::<i64>::new(),
        &probes::queue_states(),
        &probes::queue_ops(),
    );
    gate.expect(clean_queue.is_empty(), "queue routing clean");
    let clean_stack = routing_lint(
        &Stack::<i64>::new(),
        &probes::stack_states(),
        &probes::stack_ops(),
    );
    gate.expect(clean_stack.is_empty(), "stack routing clean");
    for finding in clean_register
        .iter()
        .chain(&clean_queue)
        .chain(&clean_stack)
    {
        println!("    {finding}");
    }
    let canary = routing_lint(
        &MisroutedRegister,
        &probes::register_states(),
        &probes::register_ops(),
    );
    gate.expect(
        canary.iter().any(|v| v.invariant == "routing-consistency"),
        "misrouted canary flagged",
    );
}

fn ts(time: i64, pid: u32, seq: u32) -> Timestamp {
    Timestamp::with_seq(ClockTime::from_ticks(time), ProcessId::new(pid), seq)
}

/// The honest registry: every static rule bound to an honest spec and
/// its probe sets. Must run clean.
fn honest_registry(honest_leaks: u64) -> Registry {
    let mut reg = Registry::new();
    reg.register(Box::new(RoutingRule::new(
        "register",
        RmwRegister::default(),
        probes::register_states(),
        probes::register_ops(),
    )));
    reg.register(Box::new(AccessorPurityRule::new(
        "register",
        RmwRegister::default(),
        probes::register_states(),
        probes::register_ops(),
    )));
    reg.register(Box::new(CommutativityRule::new(
        "counter",
        Counter::default(),
        probes::counter_states(),
        probes::counter_ops(),
    )));
    reg.register(Box::new(NsBatchRule::new(
        "ns-register",
        Namespace::new(RmwRegister::default()),
        probes::ns_register_states(),
        probes::ns_register_ops(),
    )));
    reg.register(Box::new(TimestampSeqRule::new(
        "executed-order",
        vec![
            ts(100, 0, 0),
            ts(250, 1, 0),
            ts(250, 1, 1),
            ts(250, 1, 2),
            ts(400, 2, 0),
        ],
    )));
    reg.register(Box::new(PayloadLeakRule::new(
        "register/honest-run",
        honest_leaks,
    )));
    reg
}

/// Runs one foil rule and records the canary: the rule must emit its
/// own code against the seeded violation.
fn canary(gate: &mut Gate, report: &mut Report, code: &'static str, what: &str, rule: &dyn Rule) {
    let mut out = Vec::new();
    rule.check(&mut out);
    let caught = out.iter().any(|d| d.code == code);
    report.add_canary(code, caught);
    gate.expect(caught, &format!("{code} foil caught ({what})"));
}

/// Gate 2: the static rule registry over honest specs plus one seeded
/// foil per rule. `honest_leaks` is the payload-leak counter observed
/// on the honest traced run (gate 5 audits the same run's trace).
fn rules_gate(gate: &mut Gate, header: &str, honest_leaks: u64) -> Report {
    println!("{header} rule registry (static spec rules)");
    let reg = honest_registry(honest_leaks);
    println!("  {} rules registered", reg.len());
    let mut report = reg.run();
    for d in &report.diagnostics {
        println!("    {d}");
    }
    gate.expect(report.is_clean(), "honest specs clean under every rule");

    canary(
        gate,
        &mut report,
        "SB001",
        "misrouted register",
        &RoutingRule::new(
            "foil/misrouted",
            MisroutedRegister,
            probes::register_states(),
            probes::register_ops(),
        ),
    );
    canary(
        gate,
        &mut report,
        "SB002",
        "impure mutator",
        &AccessorPurityRule::new(
            "foil/misrouted",
            MisroutedRegister,
            probes::register_states(),
            probes::register_ops(),
        ),
    );
    canary(
        gate,
        &mut report,
        "SB003",
        "lying commutativity declaration",
        &CommutativityRule::new(
            "foil/decl-liar",
            DeclLiarCounter,
            probes::counter_states(),
            probes::counter_ops(),
        ),
    );
    canary(
        gate,
        &mut report,
        "SB004",
        "cross-talking namespace keys",
        &NsBatchRule::new(
            "foil/cross-talk",
            CrossTalkNs,
            probes::ns_register_states(),
            probes::ns_register_ops(),
        ),
    );
    canary(
        gate,
        &mut report,
        "SB005",
        "descending timestamps and seq gap",
        &TimestampSeqRule::new(
            "foil/bad-order",
            vec![ts(300, 0, 0), ts(200, 1, 0), ts(200, 1, 2)],
        ),
    );
    canary(
        gate,
        &mut report,
        "SB105",
        "leaked payload slots",
        &PayloadLeakRule::new("foil/leaky-run", 2),
    );
    report
}

#[allow(clippy::too_many_arguments)]
fn check_honest<A, F>(
    gate: &mut Gate,
    name: &str,
    spec: &A::Spec,
    make_actors: F,
    p: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    probe_states: Vec<<A::Spec as SequentialSpec>::State>,
    smoke: bool,
) -> (u64, u64)
where
    A: ModelActor,
    A::Spec: Sync,
    <A::Spec as SequentialSpec>::State: Sync,
    <A::Spec as SequentialSpec>::Op: Send + Sync,
    <A::Spec as SequentialSpec>::Resp: Send + Sync,
    F: Fn() -> Vec<A> + Sync,
{
    let mut config = McConfig::corners(p, probe_states);
    if smoke {
        config.clock_choices.truncate(3);
    }
    let dpor = model_check(spec, &make_actors, p, script, &config);
    config.independence = Independence::Naive;
    // The naive baseline exists to be outgrown; cap it so measuring the
    // reduction stays cheap (a capped count is a lower bound).
    config.max_schedules = 20_000;
    let naive = model_check(spec, &make_actors, p, script, &config);
    println!(
        "  {name}: messages={} cells={} schedules dpor={} naive{}{} pruned={} violations={} \
         explored-states/sec={:.0}",
        dpor.messages,
        dpor.cells,
        dpor.schedules,
        if naive.capped { ">=" } else { "=" },
        naive.schedules,
        dpor.pruned,
        dpor.violations.len(),
        dpor.explored_states_per_sec(),
    );
    gate.expect(dpor.all_passed(), &format!("{name} honest runs all pass"));
    gate.expect(
        naive.violations.is_empty() && naive.unknown == 0,
        &format!("{name} naive exploration agrees"),
    );
    gate.expect(
        dpor.schedules < naive.schedules,
        &format!(
            "{name} DPOR reduction is real ({} < {})",
            dpor.schedules, naive.schedules
        ),
    );
    (dpor.explored_states, dpor.wall_nanos)
}

/// Runs the honest-implementation scenarios and returns the aggregate
/// explorer throughput (engine events per wall-clock second, rounded)
/// across their DPOR runs, for the lint report's advisory field.
fn honest_gate(gate: &mut Gate, smoke: bool) -> i64 {
    println!("[3/5] model-check honest implementations (Algorithm 1)");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;
    let mut events = 0u64;
    let mut nanos = 0u64;
    let mut tally = |(e, n): (u64, u64)| {
        events += e;
        nanos += n;
    };

    tally(check_honest(
        gate,
        "register",
        &RmwRegister::default(),
        || Replica::group(RmwRegister::default(), &p),
        &p,
        &[
            (pid(0), t(0), RmwOp::Write(1)),
            (pid(1), t(0), RmwOp::Write(2)),
            (pid(2), t(40_000), RmwOp::Read),
        ],
        probes::register_states(),
        smoke,
    ));
    tally(check_honest(
        gate,
        "queue",
        &Queue::<i64>::new(),
        || Replica::group(Queue::<i64>::new(), &p),
        &p,
        &[
            (pid(0), t(0), QueueOp::Enqueue(1)),
            (pid(1), t(0), QueueOp::Enqueue(2)),
            (pid(2), t(40_000), QueueOp::Dequeue),
        ],
        probes::queue_states(),
        smoke,
    ));
    tally(check_honest(
        gate,
        "stack",
        &Stack::<i64>::new(),
        || Replica::group(Stack::<i64>::new(), &p),
        &p,
        &[
            (pid(0), t(0), StackOp::Push(7)),
            (pid(1), t(200), StackOp::Pop),
        ],
        probes::stack_states(),
        smoke,
    ));
    if nanos == 0 {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    {
        (events as f64 * 1e9 / nanos as f64).round() as i64
    }
}

#[allow(clippy::too_many_arguments)]
fn check_foil<A, F>(
    gate: &mut Gate,
    out_dir: &Path,
    file: &str,
    object: &str,
    implementation: &str,
    spec: &A::Spec,
    make_actors: F,
    p: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    probe_states: Vec<<A::Spec as SequentialSpec>::State>,
) where
    A: ModelActor,
    A::Spec: Sync,
    <A::Spec as SequentialSpec>::State: Sync,
    <A::Spec as SequentialSpec>::Op: Send + Sync,
    <A::Spec as SequentialSpec>::Resp: Send + Sync,
    F: Fn() -> Vec<A> + Sync,
{
    let mut config = McConfig::corners(p, probe_states);
    config.stop_at_first_violation = true;
    let report = model_check(spec, &make_actors, p, script, &config);
    let name = format!("{object}/{implementation}");
    gate.expect(
        !report.violations.is_empty(),
        &format!("{name} foil caught"),
    );
    let Some(violation) = report.violations.first() else {
        return;
    };
    let cert = certify(
        spec,
        &make_actors,
        p,
        script,
        &config,
        violation,
        object,
        implementation,
        &report,
    );
    println!(
        "  {name}: {} at clock#{} delays={:?} choices={:?} (minimized)",
        cert.violation_kind, violation.clock_idx, cert.delay_ticks, cert.schedule_choices,
    );
    gate.expect(cert.replay_confirmed, &format!("{name} replay confirmed"));
    let text = cert.to_json();
    match validate_certificate(&text) {
        Ok(()) => gate.expect(true, &format!("{name} certificate schema-valid")),
        Err(e) => gate.expect(false, &format!("{name} certificate schema-valid: {e}")),
    }
    let path = out_dir.join(file);
    match std::fs::write(&path, &text) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => gate.expect(false, &format!("write {}: {e}", path.display())),
    }
}

fn foil_gate(gate: &mut Gate, out_dir: &Path) {
    println!("[4/5] foils must be caught, with certificates");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;

    // Local-first: responds from local state before agreement — even a
    // register with one writer and one later reader is broken.
    check_foil(
        gate,
        out_dir,
        "local_first_register.json",
        "register",
        "local-first",
        &RwRegister::<i64>::default(),
        || LocalFirstReplica::group(RwRegister::<i64>::default(), p.n()),
        &p,
        &[
            // The write's local-first ack completes before t = 100, but
            // gossip needs at least d − u = 6600 ticks: the read must
            // observe the write yet can only see local state.
            (pid(0), t(0), RegOp::Write(1)),
            (pid(1), t(100), RegOp::Read),
        ],
        probes::register_states(),
    );

    // Eager Algorithm 1 with halved timer waits: responds before the
    // delivery horizon, so a corner schedule reorders a dequeue past the
    // enqueue it should observe.
    check_foil(
        gate,
        out_dir,
        "eager_queue.json",
        "queue",
        "eager-timers",
        &Queue::<i64>::new(),
        || eager_group(Queue::<i64>::new(), &p, 1, 2),
        &p,
        &[
            (pid(2), t(0), QueueOp::Enqueue(7)),
            (pid(0), t(40_000), QueueOp::Dequeue),
            (pid(1), t(40_500), QueueOp::Dequeue),
        ],
        probes::queue_states(),
    );
}

/// Runs one honest Algorithm 1 register scenario (write at 0, read at
/// 30 000 ticks, maximal fixed delays, zero skew) with a JSON-lines
/// sink attached, returning the engine report and the trace text.
fn honest_register_trace() -> (SimReport, String) {
    let p = params();
    let shared = SharedJsonLinesSink::new();
    let mut sim = Simulation::new(
        Replica::group(RmwRegister::default(), &p),
        ClockAssignment::zero(p.n()),
        FixedDelay::maximal(p.delay_bounds()),
    );
    sim.set_trace_sink(Box::new(shared.clone()));
    sim.schedule_invoke(ProcessId::new(0), SimTime::ZERO, RmwOp::Write(1));
    sim.schedule_invoke(ProcessId::new(1), SimTime::from_ticks(30_000), RmwOp::Read);
    let report = sim.run().expect("honest register run completes");
    (report, shared.text())
}

/// One synthesized foil trace per audit rule: the code the audit must
/// emit, a short label, and the JSON lines.
fn audit_foils() -> Vec<(&'static str, &'static str, String)> {
    let fifo = concat!(
        "{\"kind\":\"send\",\"at\":0,\"clock\":0,\"pid\":0,\"to\":1,\"msg\":0,\"payload\":\"a\"}\n",
        "{\"kind\":\"send\",\"at\":10,\"clock\":10,\"pid\":0,\"to\":1,\"msg\":1,\"payload\":\"b\"}\n",
        "{\"kind\":\"deliver\",\"at\":6700,\"clock\":6700,\"pid\":1,\"from\":0,\"msg\":1}\n",
        "{\"kind\":\"deliver\",\"at\":9000,\"clock\":9000,\"pid\":1,\"from\":0,\"msg\":0}\n",
    );
    vec![
        (
            "SB101",
            "delivery outside [d-u, d]",
            concat!(
                "{\"kind\":\"send\",\"at\":0,\"clock\":0,\"pid\":0,\"to\":1,\"msg\":0,\"payload\":\"m\"}\n",
                "{\"kind\":\"deliver\",\"at\":500,\"clock\":500,\"pid\":1,\"from\":0,\"msg\":0}\n",
            )
            .to_owned(),
        ),
        (
            "SB102",
            "orphan deliver + undelivered send",
            concat!(
                "{\"kind\":\"deliver\",\"at\":100,\"clock\":100,\"pid\":1,\"from\":0,\"msg\":5}\n",
                "{\"kind\":\"send\",\"at\":200,\"clock\":200,\"pid\":0,\"to\":1,\"msg\":6,\"payload\":\"m\"}\n",
            )
            .to_owned(),
        ),
        ("SB103", "per-channel FIFO inversion", fifo.to_owned()),
        (
            "SB104",
            "timer set but never fired",
            concat!(
                "{\"kind\":\"timer-set\",\"at\":0,\"clock\":0,\"pid\":0,",
                "\"timer\":1,\"tag\":\"hold\",\"delay\":9000}\n",
            )
            .to_owned(),
        ),
        (
            "SB105",
            "engine counted live payload slots",
            concat!(
                "{\"kind\":\"counter\",\"stage\":\"engine\",",
                "\"name\":\"leaked_payloads\",\"value\":3}\n",
            )
            .to_owned(),
        ),
    ]
}

/// Gate 5: the happens-before trace audit. The honest traced run must
/// audit clean under the declared window; each synthesized foil trace
/// must trip its rule. The honest trace is written next to the report
/// so CI can re-audit it through the `audit` subcommand.
fn audit_gate(
    gate: &mut Gate,
    header: &str,
    out_dir: &Path,
    trace_text: &str,
    report: &mut Report,
) {
    println!("{header} happens-before trace audit");
    let p = params();
    let cfg = AuditConfig {
        window: Some((
            i64::try_from(p.d().as_ticks()).expect("d fits"),
            i64::try_from(p.u().as_ticks()).expect("u fits"),
        )),
    };
    match audit_text(trace_text, &cfg) {
        Ok((honest, summary)) => {
            println!(
                "  honest register trace: {} events, {} processes, {} message(s) matched",
                summary.events, summary.processes, summary.matched_messages
            );
            for d in &honest.diagnostics {
                println!("    {d}");
            }
            gate.expect(
                honest.is_clean(),
                "honest register trace audits clean (window, matching, FIFO, timers)",
            );
            report.diagnostics.extend(honest.diagnostics);
        }
        Err(e) => gate.expect(false, &format!("honest trace parses: {e}")),
    }
    let trace_path = out_dir.join("honest.trace.jsonl");
    match std::fs::write(&trace_path, trace_text) {
        Ok(()) => println!("  wrote {}", trace_path.display()),
        Err(e) => gate.expect(false, &format!("write {}: {e}", trace_path.display())),
    }

    for (code, what, trace) in audit_foils() {
        match audit_text(&trace, &cfg) {
            Ok((foil, _)) => {
                let caught = foil.has_code(code);
                report.add_canary(code, caught);
                gate.expect(caught, &format!("{code} audit foil caught ({what})"));
            }
            Err(e) => {
                report.add_canary(code, false);
                gate.expect(false, &format!("{code} audit foil parses: {e}"));
            }
        }
    }
}

/// Serializes the combined rule report, re-validates it against the
/// `skewbound-lint-report/v1` schema, and writes it to `report.json`.
fn write_report(gate: &mut Gate, out_dir: &Path, report: &Report) {
    let text = report.to_json();
    match validate_report(&text) {
        Ok(()) => gate.expect(true, "report.json schema-valid"),
        Err(e) => gate.expect(false, &format!("report.json schema-valid: {e}")),
    }
    gate.expect(
        report.canaries.iter().all(|c| c.caught),
        &format!("all {} canaries caught", report.canaries.len()),
    );
    let path = out_dir.join("report.json");
    match std::fs::write(&path, &text) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => gate.expect(false, &format!("write {}: {e}", path.display())),
    }
}

/// Replays the register/local-first foil's minimized counterexample
/// with a JSON-lines sink attached, writes the trace to `trace_path`,
/// and cross-checks it against the certificate coordinates: every
/// message's `deliver.at − send.at` must equal the certificate's
/// `delay_ticks` entry for that message (both are indexed by global
/// send order).
fn trace_gate(gate: &mut Gate, trace_path: &Path) {
    println!("[trace] foil replay trace (register/local-first)");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;
    let spec = RwRegister::<i64>::default();
    let make_actors = || LocalFirstReplica::group(RwRegister::<i64>::default(), p.n());
    let script = [
        (pid(0), t(0), RegOp::Write(1)),
        (pid(1), t(100), RegOp::Read),
    ];
    let mut config = McConfig::corners(&p, probes::register_states());
    config.stop_at_first_violation = true;
    let report = model_check(&spec, make_actors, &p, &script, &config);
    let Some(violation) = report.violations.first() else {
        gate.expect(false, "trace foil violation found");
        return;
    };
    let (min, steps) = minimize_counted(&spec, &make_actors, &p, &script, &config, violation);
    let shared = SharedJsonLinesSink::new();
    let (outcome, _) = replay_traced(
        &spec,
        &make_actors,
        &p,
        &script,
        &config,
        min.clock_idx,
        &min.delay_digits,
        &min.choices,
        Box::new(shared.clone()),
    );
    gate.expect(
        matches!(&outcome.verdict, RunVerdict::Violation(k) if k.same_kind(&min.kind)),
        "traced replay reproduces the violation",
    );
    let mut handle = shared.clone();
    handle.counter("mc", "schedules", report.schedules);
    handle.counter("mc", "pruned", report.pruned);
    handle.counter("mc", "delta_debug_steps", steps);

    let text = shared.text();
    if let Err(e) = std::fs::write(trace_path, &text) {
        gate.expect(false, &format!("write {}: {e}", trace_path.display()));
        return;
    }
    println!("  wrote {}", trace_path.display());

    // Validate by re-reading what was written, not the in-memory copy.
    let on_disk = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => {
            gate.expect(false, &format!("read back {}: {e}", trace_path.display()));
            return;
        }
    };
    let values = match parse_lines(&on_disk) {
        Ok(v) => v,
        Err(e) => {
            gate.expect(false, &format!("trace parses as JSON lines: {e}"));
            return;
        }
    };
    println!("  trace: {} lines parsed OK", values.len());
    gate.expect(!values.is_empty(), "trace parses as JSON lines");

    let field = |v: &skewbound_mc::json::Json, k: &str| v.get(k).and_then(|f| f.as_num());
    let kind_of =
        |v: &skewbound_mc::json::Json| v.get("kind").and_then(|k| k.as_str()).map(str::to_owned);
    let mut send_at = std::collections::BTreeMap::new();
    let mut deliver_at = std::collections::BTreeMap::new();
    for v in &values {
        match kind_of(v).as_deref() {
            Some("send") => {
                send_at.insert(field(v, "msg"), field(v, "at"));
            }
            Some("deliver") => {
                deliver_at.insert(field(v, "msg"), field(v, "at"));
            }
            _ => {}
        }
    }
    let delay_ticks: Vec<i64> = min
        .delay_digits
        .iter()
        .map(|&d| i64::try_from(config.delay_choices[d].as_ticks()).expect("ticks fit"))
        .collect();
    gate.expect(
        send_at.len() == delay_ticks.len(),
        &format!(
            "trace has one send per certificate delay ({} = {})",
            send_at.len(),
            delay_ticks.len()
        ),
    );
    let consistent = (0..delay_ticks.len()).all(|i| {
        let msg = Some(i64::try_from(i).expect("msg id fits"));
        match (send_at.get(&msg), deliver_at.get(&msg)) {
            (Some(Some(sent)), Some(Some(recv))) => recv - sent == delay_ticks[i],
            _ => false,
        }
    });
    gate.expect(
        consistent,
        "trace delivery delays match certificate delay_ticks",
    );
}

fn finish(gate: &Gate) -> ExitCode {
    if gate.failures == 0 {
        println!("skewlint: OK");
        ExitCode::SUCCESS
    } else {
        println!("skewlint: {} expectation(s) failed", gate.failures);
        ExitCode::FAILURE
    }
}

/// `skewlint rules [--out DIR]`: only the rule registry and trace-audit
/// gates, writing `report.json` and `honest.trace.jsonl`.
fn rules_command(mut args: std::env::Args) -> ExitCode {
    let mut out_dir = PathBuf::from("target/skewlint");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: skewlint rules [--out DIR])");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let mut gate = Gate { failures: 0 };
    let (sim_report, trace_text) = honest_register_trace();
    let mut report = rules_gate(&mut gate, "[1/2]", sim_report.leaked_payloads);
    audit_gate(&mut gate, "[2/2]", &out_dir, &trace_text, &mut report);
    write_report(&mut gate, &out_dir, &report);
    finish(&gate)
}

/// `skewlint audit FILE [--window D,U]`: audit an arbitrary JSON-lines
/// trace. Prints diagnostics and a summary; exits zero iff there are no
/// error-severity findings.
fn audit_command(mut args: std::env::Args) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut window: Option<(i64, i64)> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--window" => {
                let Some(spec) = args.next() else {
                    eprintln!("--window needs D,U (ticks)");
                    return ExitCode::FAILURE;
                };
                let parts: Vec<_> = spec.split(',').collect();
                let parsed = match parts.as_slice() {
                    [d, u] => d
                        .trim()
                        .parse::<i64>()
                        .ok()
                        .zip(u.trim().parse::<i64>().ok()),
                    _ => None,
                };
                let Some((d, u)) = parsed else {
                    eprintln!("--window needs D,U (ticks), got {spec:?}");
                    return ExitCode::FAILURE;
                };
                window = Some((d, u));
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: skewlint audit FILE [--window D,U])");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: skewlint audit FILE [--window D,U]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    match audit_text(&text, &AuditConfig { window }) {
        Ok((report, summary)) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!(
                "audit: {} events, {} processes, {} message(s) matched, \
                 {} error(s), {} warning(s)",
                summary.events,
                summary.processes,
                summary.matched_messages,
                report.errors(),
                report.warnings()
            );
            if report.errors() == 0 {
                println!("audit: OK");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("audit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let mut smoke = false;
    let mut out_dir = PathBuf::from("target/skewlint");
    let mut trace_path: Option<PathBuf> = None;
    let mut first = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "rules" if first => return rules_command(args),
            "audit" if first => return audit_command(args),
            "--smoke" => smoke = true,
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(path));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: skewlint [--smoke] [--out DIR] [--trace FILE] \
                     | skewlint rules [--out DIR] \
                     | skewlint audit FILE [--window D,U])"
                );
                return ExitCode::FAILURE;
            }
        }
        first = false;
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut gate = Gate { failures: 0 };
    lint_gate(&mut gate);
    let (sim_report, trace_text) = honest_register_trace();
    let mut report = rules_gate(&mut gate, "[2/5]", sim_report.leaked_payloads);
    report.explored_states_per_sec = Some(honest_gate(&mut gate, smoke));
    foil_gate(&mut gate, &out_dir);
    audit_gate(&mut gate, "[5/5]", &out_dir, &trace_text, &mut report);
    write_report(&mut gate, &out_dir, &report);
    if let Some(trace_path) = &trace_path {
        trace_gate(&mut gate, trace_path);
    }
    finish(&gate)
}
