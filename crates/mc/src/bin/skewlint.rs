//! `skewlint` — the protocol-invariant analyzer CI runs.
//!
//! Three gates, in order:
//!
//! 1. **Routing lints** (static): the declared operation classes of the
//!    register/queue/stack specifications are cross-checked against
//!    their behavior on the probe sets ([`skewbound_core::invariants::
//!    routing_lint`]). Honest specs must come back clean; a canned
//!    misrouted spec must be flagged (the lint itself is tested here,
//!    not trusted).
//! 2. **Model checking** (honest): small register/queue/stack scenarios
//!    under Algorithm 1 are explored over every delay corner, clock
//!    corner and same-time delivery order. Zero violations expected;
//!    each scenario is explored under both the DPOR and the naive
//!    independence relation and the DPOR schedule count must be
//!    *strictly* smaller — the reduction is measured, not assumed.
//! 3. **Foils**: known-broken implementations must be caught, and each
//!    catch is shrunk to a minimized, replay-confirmed certificate,
//!    written to the output directory and schema-validated by re-parse.
//!
//! Usage: `skewlint [--smoke] [--out DIR] [--trace FILE]`. `--smoke`
//! trims the clock grid for CI latency; `--out` defaults to
//! `target/skewlint`; `--trace` additionally replays the first foil's
//! minimized counterexample with a JSON-lines trace sink attached,
//! writes the trace to `FILE`, and cross-checks it against the
//! certificate coordinates (DESIGN.md §9).
//! Exits nonzero (after finishing all gates) if any expectation fails;
//! the final line is `skewlint: OK` exactly when everything held.

use std::path::PathBuf;
use std::process::ExitCode;

use skewbound_core::foils::{eager_group, LocalFirstReplica};
use skewbound_core::invariants::routing_lint;
use skewbound_core::params::Params;
use skewbound_core::replica::Replica;
use skewbound_mc::trace::parse_lines;
use skewbound_mc::{
    certify, minimize_counted, model_check, replay_traced, validate_certificate, Independence,
    McConfig, ModelActor, RunVerdict, SharedJsonLinesSink,
};
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::{SimDuration, SimTime};
use skewbound_sim::trace::TraceSink;
use skewbound_spec::prelude::*;
use skewbound_spec::probes;

fn params() -> Params {
    Params::with_optimal_skew(
        3,
        SimDuration::from_ticks(9_000),
        SimDuration::from_ticks(2_400),
        SimDuration::ZERO,
    )
    .expect("valid parameters")
}

/// A register that misdeclares its read as a pure mutator — the lint
/// gate's canary.
#[derive(Debug, Clone, Default)]
struct MisroutedRegister;

impl SequentialSpec for MisroutedRegister {
    type State = i64;
    type Op = RmwOp;
    type Resp = RmwResp;

    fn initial(&self) -> i64 {
        0
    }
    fn apply(&self, state: &i64, op: &RmwOp) -> (i64, RmwResp) {
        RmwRegister::default().apply(state, op)
    }
    fn class(&self, _op: &RmwOp) -> OpClass {
        OpClass::PureMutator
    }
}

struct Gate {
    failures: u32,
}

impl Gate {
    fn expect(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            self.failures += 1;
            println!("  FAIL: {what}");
        }
    }
}

fn lint_gate(gate: &mut Gate) {
    println!("[1/3] routing lints");
    let clean_register = routing_lint(
        &RmwRegister::default(),
        &probes::register_states(),
        &probes::register_ops(),
    );
    gate.expect(clean_register.is_empty(), "register routing clean");
    let clean_queue = routing_lint(
        &Queue::<i64>::new(),
        &probes::queue_states(),
        &probes::queue_ops(),
    );
    gate.expect(clean_queue.is_empty(), "queue routing clean");
    let clean_stack = routing_lint(
        &Stack::<i64>::new(),
        &probes::stack_states(),
        &probes::stack_ops(),
    );
    gate.expect(clean_stack.is_empty(), "stack routing clean");
    for finding in clean_register
        .iter()
        .chain(&clean_queue)
        .chain(&clean_stack)
    {
        println!("    {finding}");
    }
    let canary = routing_lint(
        &MisroutedRegister,
        &probes::register_states(),
        &probes::register_ops(),
    );
    gate.expect(
        canary.iter().any(|v| v.invariant == "routing-consistency"),
        "misrouted canary flagged",
    );
}

#[allow(clippy::too_many_arguments)]
fn check_honest<A, F>(
    gate: &mut Gate,
    name: &str,
    spec: &A::Spec,
    make_actors: F,
    p: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    probe_states: Vec<<A::Spec as SequentialSpec>::State>,
    smoke: bool,
) where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let mut config = McConfig::corners(p, probe_states);
    if smoke {
        config.clock_choices.truncate(3);
    }
    let dpor = model_check(spec, &make_actors, p, script, &config);
    config.independence = Independence::Naive;
    // The naive baseline exists to be outgrown; cap it so measuring the
    // reduction stays cheap (a capped count is a lower bound).
    config.max_schedules = 20_000;
    let naive = model_check(spec, &make_actors, p, script, &config);
    println!(
        "  {name}: messages={} cells={} schedules dpor={} naive{}{} pruned={} violations={}",
        dpor.messages,
        dpor.cells,
        dpor.schedules,
        if naive.capped { ">=" } else { "=" },
        naive.schedules,
        dpor.pruned,
        dpor.violations.len(),
    );
    gate.expect(dpor.all_passed(), &format!("{name} honest runs all pass"));
    gate.expect(
        naive.violations.is_empty() && naive.unknown == 0,
        &format!("{name} naive exploration agrees"),
    );
    gate.expect(
        dpor.schedules < naive.schedules,
        &format!(
            "{name} DPOR reduction is real ({} < {})",
            dpor.schedules, naive.schedules
        ),
    );
}

fn honest_gate(gate: &mut Gate, smoke: bool) {
    println!("[2/3] model-check honest implementations (Algorithm 1)");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;

    check_honest(
        gate,
        "register",
        &RmwRegister::default(),
        || Replica::group(RmwRegister::default(), &p),
        &p,
        &[
            (pid(0), t(0), RmwOp::Write(1)),
            (pid(1), t(0), RmwOp::Write(2)),
            (pid(2), t(40_000), RmwOp::Read),
        ],
        probes::register_states(),
        smoke,
    );
    check_honest(
        gate,
        "queue",
        &Queue::<i64>::new(),
        || Replica::group(Queue::<i64>::new(), &p),
        &p,
        &[
            (pid(0), t(0), QueueOp::Enqueue(1)),
            (pid(1), t(0), QueueOp::Enqueue(2)),
            (pid(2), t(40_000), QueueOp::Dequeue),
        ],
        probes::queue_states(),
        smoke,
    );
    check_honest(
        gate,
        "stack",
        &Stack::<i64>::new(),
        || Replica::group(Stack::<i64>::new(), &p),
        &p,
        &[
            (pid(0), t(0), StackOp::Push(7)),
            (pid(1), t(200), StackOp::Pop),
        ],
        probes::stack_states(),
        smoke,
    );
}

#[allow(clippy::too_many_arguments)]
fn check_foil<A, F>(
    gate: &mut Gate,
    out_dir: &std::path::Path,
    file: &str,
    object: &str,
    implementation: &str,
    spec: &A::Spec,
    make_actors: F,
    p: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    probe_states: Vec<<A::Spec as SequentialSpec>::State>,
) where
    A: ModelActor,
    F: Fn() -> Vec<A>,
{
    let mut config = McConfig::corners(p, probe_states);
    config.stop_at_first_violation = true;
    let report = model_check(spec, &make_actors, p, script, &config);
    let name = format!("{object}/{implementation}");
    gate.expect(
        !report.violations.is_empty(),
        &format!("{name} foil caught"),
    );
    let Some(violation) = report.violations.first() else {
        return;
    };
    let cert = certify(
        spec,
        &make_actors,
        p,
        script,
        &config,
        violation,
        object,
        implementation,
        &report,
    );
    println!(
        "  {name}: {} at clock#{} delays={:?} choices={:?} (minimized)",
        cert.violation_kind, violation.clock_idx, cert.delay_ticks, cert.schedule_choices,
    );
    gate.expect(cert.replay_confirmed, &format!("{name} replay confirmed"));
    let text = cert.to_json();
    match validate_certificate(&text) {
        Ok(()) => gate.expect(true, &format!("{name} certificate schema-valid")),
        Err(e) => gate.expect(false, &format!("{name} certificate schema-valid: {e}")),
    }
    let path = out_dir.join(file);
    match std::fs::write(&path, &text) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => gate.expect(false, &format!("write {}: {e}", path.display())),
    }
}

fn foil_gate(gate: &mut Gate, out_dir: &std::path::Path) {
    println!("[3/3] foils must be caught, with certificates");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;

    // Local-first: responds from local state before agreement — even a
    // register with one writer and one later reader is broken.
    check_foil(
        gate,
        out_dir,
        "local_first_register.json",
        "register",
        "local-first",
        &RwRegister::<i64>::default(),
        || LocalFirstReplica::group(RwRegister::<i64>::default(), p.n()),
        &p,
        &[
            // The write's local-first ack completes before t = 100, but
            // gossip needs at least d − u = 6600 ticks: the read must
            // observe the write yet can only see local state.
            (pid(0), t(0), RegOp::Write(1)),
            (pid(1), t(100), RegOp::Read),
        ],
        probes::register_states(),
    );

    // Eager Algorithm 1 with halved timer waits: responds before the
    // delivery horizon, so a corner schedule reorders a dequeue past the
    // enqueue it should observe.
    check_foil(
        gate,
        out_dir,
        "eager_queue.json",
        "queue",
        "eager-timers",
        &Queue::<i64>::new(),
        || eager_group(Queue::<i64>::new(), &p, 1, 2),
        &p,
        &[
            (pid(2), t(0), QueueOp::Enqueue(7)),
            (pid(0), t(40_000), QueueOp::Dequeue),
            (pid(1), t(40_500), QueueOp::Dequeue),
        ],
        probes::queue_states(),
    );
}

/// Replays the register/local-first foil's minimized counterexample
/// with a JSON-lines sink attached, writes the trace to `trace_path`,
/// and cross-checks it against the certificate coordinates: every
/// message's `deliver.at − send.at` must equal the certificate's
/// `delay_ticks` entry for that message (both are indexed by global
/// send order).
fn trace_gate(gate: &mut Gate, trace_path: &std::path::Path) {
    println!("[trace] foil replay trace (register/local-first)");
    let p = params();
    let t = SimTime::from_ticks;
    let pid = ProcessId::new;
    let spec = RwRegister::<i64>::default();
    let make_actors = || LocalFirstReplica::group(RwRegister::<i64>::default(), p.n());
    let script = [
        (pid(0), t(0), RegOp::Write(1)),
        (pid(1), t(100), RegOp::Read),
    ];
    let mut config = McConfig::corners(&p, probes::register_states());
    config.stop_at_first_violation = true;
    let report = model_check(&spec, make_actors, &p, &script, &config);
    let Some(violation) = report.violations.first() else {
        gate.expect(false, "trace foil violation found");
        return;
    };
    let (min, steps) = minimize_counted(&spec, &make_actors, &p, &script, &config, violation);
    let shared = SharedJsonLinesSink::new();
    let (outcome, _) = replay_traced(
        &spec,
        &make_actors,
        &p,
        &script,
        &config,
        min.clock_idx,
        &min.delay_digits,
        &min.choices,
        Box::new(shared.clone()),
    );
    gate.expect(
        matches!(&outcome.verdict, RunVerdict::Violation(k) if k.same_kind(&min.kind)),
        "traced replay reproduces the violation",
    );
    let mut handle = shared.clone();
    handle.counter("mc", "schedules", report.schedules);
    handle.counter("mc", "pruned", report.pruned);
    handle.counter("mc", "delta_debug_steps", steps);

    let text = shared.text();
    if let Err(e) = std::fs::write(trace_path, &text) {
        gate.expect(false, &format!("write {}: {e}", trace_path.display()));
        return;
    }
    println!("  wrote {}", trace_path.display());

    // Validate by re-reading what was written, not the in-memory copy.
    let on_disk = match std::fs::read_to_string(trace_path) {
        Ok(s) => s,
        Err(e) => {
            gate.expect(false, &format!("read back {}: {e}", trace_path.display()));
            return;
        }
    };
    let values = match parse_lines(&on_disk) {
        Ok(v) => v,
        Err(e) => {
            gate.expect(false, &format!("trace parses as JSON lines: {e}"));
            return;
        }
    };
    println!("  trace: {} lines parsed OK", values.len());
    gate.expect(!values.is_empty(), "trace parses as JSON lines");

    let field = |v: &skewbound_mc::json::Json, k: &str| v.get(k).and_then(|f| f.as_num());
    let kind_of =
        |v: &skewbound_mc::json::Json| v.get("kind").and_then(|k| k.as_str()).map(str::to_owned);
    let mut send_at = std::collections::BTreeMap::new();
    let mut deliver_at = std::collections::BTreeMap::new();
    for v in &values {
        match kind_of(v).as_deref() {
            Some("send") => {
                send_at.insert(field(v, "msg"), field(v, "at"));
            }
            Some("deliver") => {
                deliver_at.insert(field(v, "msg"), field(v, "at"));
            }
            _ => {}
        }
    }
    let delay_ticks: Vec<i64> = min
        .delay_digits
        .iter()
        .map(|&d| i64::try_from(config.delay_choices[d].as_ticks()).expect("ticks fit"))
        .collect();
    gate.expect(
        send_at.len() == delay_ticks.len(),
        &format!(
            "trace has one send per certificate delay ({} = {})",
            send_at.len(),
            delay_ticks.len()
        ),
    );
    let consistent = (0..delay_ticks.len()).all(|i| {
        let msg = Some(i64::try_from(i).expect("msg id fits"));
        match (send_at.get(&msg), deliver_at.get(&msg)) {
            (Some(Some(sent)), Some(Some(recv))) => recv - sent == delay_ticks[i],
            _ => false,
        }
    });
    gate.expect(
        consistent,
        "trace delivery delays match certificate delay_ticks",
    );
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_dir = PathBuf::from("target/skewlint");
    let mut trace_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            "--trace" => {
                let Some(path) = args.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::FAILURE;
                };
                trace_path = Some(PathBuf::from(path));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: skewlint [--smoke] [--out DIR] [--trace FILE])"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut gate = Gate { failures: 0 };
    lint_gate(&mut gate);
    honest_gate(&mut gate, smoke);
    foil_gate(&mut gate, &out_dir);
    if let Some(trace_path) = &trace_path {
        trace_gate(&mut gate, trace_path);
    }

    if gate.failures == 0 {
        println!("skewlint: OK");
        ExitCode::SUCCESS
    } else {
        println!("skewlint: {} expectation(s) failed", gate.failures);
        ExitCode::FAILURE
    }
}
