//! # skewbound-mc
//!
//! A stateful model checker and protocol-invariant analyzer for the
//! shared-object implementations in this workspace.
//!
//! The lower-bound machinery (`skewbound-shift`) checks *specific*
//! adversarial runs; [`exhaustive_probe`](skewbound_shift::exhaustive)
//! enumerates delay and clock assignments but keeps the engine's FIFO
//! order for same-time events. This crate closes the remaining gap:
//!
//! * [`explore`] — replay-based depth-first exploration of **every**
//!   delivery order among same-time events, on top of every delay and
//!   clock corner, pruned with sleep sets over a commuting-delivery
//!   independence relation (dynamic partial-order reduction);
//! * [`model`] — the small contract ([`ModelActor`]) an implementation
//!   satisfies to be explorable: message payload ops (for the
//!   independence relation) and executed timestamp orders (for the
//!   Lemma C.10 invariant);
//! * protocol invariants from [`skewbound_core::invariants`] checked on
//!   every explored run, next to full linearizability checking;
//! * [`certificate`] — minimized, replay-confirmed counterexample
//!   certificates in a stable JSON schema, via the [`json`] module
//!   (re-exported from `skewbound-lint`);
//! * `skewlint` (in `src/bin`) — the command-line analyzer CI runs:
//!   the `skewbound-lint` rule registry with per-rule foil canaries,
//!   honest-implementation verification with DPOR-vs-naive schedule
//!   accounting, certificate emission for the known-broken foils, and
//!   the offline happens-before trace auditor.
//!
//! ```
//! use skewbound_core::{params::Params, replica::Replica};
//! use skewbound_mc::{model_check, McConfig};
//! use skewbound_sim::{ids::ProcessId, time::{SimDuration, SimTime}};
//! use skewbound_spec::{prelude::*, probes};
//!
//! let p = Params::with_optimal_skew(
//!     2,
//!     SimDuration::from_ticks(9_000),
//!     SimDuration::from_ticks(2_400),
//!     SimDuration::ZERO,
//! )?;
//! let mut config = McConfig::corners(&p, probes::register_states());
//! config.clock_choices.truncate(1); // zero-skew only, for doc-test speed
//! let script = [(ProcessId::new(0), SimTime::ZERO, RmwOp::Write(7))];
//! let report = model_check(
//!     &RmwRegister::default(),
//!     || Replica::group(RmwRegister::default(), &p),
//!     &p,
//!     &script,
//!     &config,
//! );
//! assert!(report.all_passed());
//! # Ok::<(), skewbound_core::params::ParamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certificate;
pub mod explore;
pub mod frontier;
pub mod model;
pub mod table;
pub mod trace;

pub use skewbound_lint::json;

pub use certificate::{certify, validate_certificate, CertRecord, Certificate, SCHEMA};
pub use explore::{
    minimize, minimize_counted, model_check, replay, replay_traced, ChoicePoint, Independence,
    McConfig, McReport, McViolation, RunOutcome, RunVerdict, ViolationKind,
};
pub use frontier::{model_check_resumable, Fringe, FRINGE_SCHEMA};
pub use model::ModelActor;
pub use table::{CachedVerdict, TranspositionTable};
pub use trace::{JsonLinesSink, SharedJsonLinesSink};
