//! Shared transposition table for parallel exploration.
//!
//! The linearizability verdict of a complete history is a pure function
//! of its *precedence structure*: the operations, their responses, and
//! the real-time order relation `OpRecord::precedes` (the checker never
//! reads raw timestamps beyond that relation). Distinct grid cells —
//! different delay digits, different clock corners, different delivery
//! orders — frequently produce histories with identical precedence
//! structures, so their (potentially exponential) checker searches are
//! redundant. [`TranspositionTable`] memoizes the verdict under a key
//! that captures exactly the checker's inputs:
//!
//! ```text
//! key[i] = (op_i, resp_i, mask_i)    mask_i bit j  ⇔  record j precedes record i
//! ```
//!
//! following the hash-consing approach of `lin::intern::StateInterner`
//! (fingerprint-keyed `FxHashMap`s), but shared across worker threads
//! behind a **sharded lock**: the key hash picks one of a fixed
//! power-of-two number of independently locked shards, so concurrent
//! lookups on different shards never contend. The verdict is computed
//! *outside* the lock — two workers may race on the same fresh key and
//! both compute it, but the function is pure, so the duplicate insert is
//! idempotent and the table never blocks on a checker search.
//!
//! ## What this does (and does not) change
//!
//! The table only short-circuits the **linearizability check** of a run
//! that was executed anyway; it never skips a schedule. Schedule counts,
//! pruning decisions and verdicts are therefore bit-identical with and
//! without the table, at any thread count — hit/miss counters are the
//! only observable difference, and `McReport` treats those as advisory.
//! Protocol invariants (`TimestampsMonotone`, `ResponseBounds`) *do*
//! read raw timestamps, so they are always re-evaluated; they are linear
//! scans, cheap next to the checker's DFS.

use std::collections::hash_map::Entry;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fxhash::{FxHashMap, FxHasher};
use skewbound_lin::checker::{check_history_stats, CheckLimits, CheckOutcome};
use skewbound_sim::history::History;
use skewbound_spec::seqspec::SequentialSpec;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// A memoized linearizability verdict, stripped of its witness payload
/// (the explorer only needs the classification; certificates re-run the
/// checker on the replayed coordinate anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The history admits a legal linearization.
    Linearizable,
    /// No legal linearization exists.
    NotLinearizable,
    /// The checker hit its node limit.
    Unknown,
}

type Key<S> = Vec<(<S as SequentialSpec>::Op, <S as SequentialSpec>::Resp, u128)>;

/// Sharded, thread-shared memo from precedence structure to
/// linearizability verdict. See the module docs for the soundness
/// argument and the determinism contract.
#[derive(Debug)]
pub struct TranspositionTable<S: SequentialSpec> {
    shards: Vec<Mutex<FxHashMap<Key<S>, CachedVerdict>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

impl<S: SequentialSpec> Default for TranspositionTable<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: SequentialSpec> TranspositionTable<S> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        TranspositionTable {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    /// The precedence-structure key of a complete history.
    ///
    /// # Panics
    ///
    /// Panics if the history is incomplete or longer than 128 operations
    /// (the mask is a `u128`); callers gate on both before checking.
    #[must_use]
    pub fn key(history: &History<S::Op, S::Resp>) -> Key<S> {
        let records = history.records();
        assert!(
            records.len() <= 128,
            "transposition key supports at most 128 operations, got {}",
            records.len()
        );
        records
            .iter()
            .enumerate()
            .map(|(i, rec)| {
                let resp = rec
                    .resp()
                    .expect("transposition key requires a complete history")
                    .clone();
                let mut mask = 0u128;
                for (j, other) in records.iter().enumerate() {
                    if j != i && other.precedes(rec) {
                        mask |= 1u128 << j;
                    }
                }
                (rec.op.clone(), resp, mask)
            })
            .collect()
    }

    fn shard_for(key: &Key<S>) -> usize {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARDS - 1)
    }

    /// Checks `history` against `spec`, consulting the memo first. On a
    /// miss the checker runs outside the shard lock and the verdict is
    /// inserted afterwards (idempotently, if another worker raced).
    ///
    /// # Panics
    ///
    /// Same conditions as [`check_history_stats`]: incomplete history or
    /// more than 128 operations.
    pub fn check(
        &self,
        spec: &S,
        history: &History<S::Op, S::Resp>,
        limits: CheckLimits,
    ) -> CachedVerdict {
        let key = Self::key(history);
        let shard = &self.shards[Self::shard_for(&key)];
        if let Some(&verdict) = shard.lock().expect("table shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (outcome, _stats) = check_history_stats(spec, history, limits);
        let verdict = match outcome {
            CheckOutcome::Linearizable(_) => CachedVerdict::Linearizable,
            CheckOutcome::NotLinearizable(_) => CachedVerdict::NotLinearizable,
            CheckOutcome::Unknown { .. } => CachedVerdict::Unknown,
        };
        if let Entry::Vacant(slot) = shard.lock().expect("table shard poisoned").entry(key) {
            slot.insert(verdict);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    /// Memo hits so far (advisory: thread-timing dependent).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Checker searches actually executed (advisory).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct precedence structures stored (advisory).
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skewbound_sim::ids::ProcessId;
    use skewbound_sim::time::SimTime;
    use skewbound_spec::prelude::*;

    fn history(ops: &[(u32, RmwOp, RmwResp, u64, u64)]) -> History<RmwOp, RmwResp> {
        let mut h = History::new();
        for &(pid, ref op, ref resp, at, done) in ops {
            let id = h.record_invoke(ProcessId::new(pid), op.clone(), SimTime::from_ticks(at));
            h.record_response(id, resp.clone(), SimTime::from_ticks(done));
        }
        h
    }

    #[test]
    fn same_precedence_structure_hits() {
        let table: TranspositionTable<RmwRegister> = TranspositionTable::new();
        let spec = RmwRegister::default();
        let a = history(&[
            (0, RmwOp::Write(7), RmwResp::Ack, 0, 10),
            (1, RmwOp::Read, RmwResp::Value(7), 20, 30),
        ]);
        // Different raw times, identical precedence structure.
        let b = history(&[
            (0, RmwOp::Write(7), RmwResp::Ack, 5, 11),
            (1, RmwOp::Read, RmwResp::Value(7), 40, 90),
        ]);
        assert_eq!(
            table.check(&spec, &a, CheckLimits::default()),
            CachedVerdict::Linearizable
        );
        assert_eq!(table.hits(), 0);
        assert_eq!(
            table.check(&spec, &b, CheckLimits::default()),
            CachedVerdict::Linearizable
        );
        assert_eq!(table.hits(), 1);
        assert_eq!(table.entries(), 1);
    }

    #[test]
    fn verdicts_are_classified() {
        let table: TranspositionTable<RmwRegister> = TranspositionTable::new();
        let spec = RmwRegister::default();
        // A stale read strictly after the write completes: not linearizable.
        let bad = history(&[
            (0, RmwOp::Write(3), RmwResp::Ack, 0, 10),
            (1, RmwOp::Read, RmwResp::Value(9), 20, 30),
        ]);
        assert_eq!(
            table.check(&spec, &bad, CheckLimits::default()),
            CachedVerdict::NotLinearizable
        );
        // Same structure again: served from the memo.
        assert_eq!(
            table.check(&spec, &bad, CheckLimits::default()),
            CachedVerdict::NotLinearizable
        );
        assert_eq!(table.hits(), 1);
        assert_eq!(table.misses(), 1);
    }

    #[test]
    fn overlapping_ops_key_differs_from_sequential() {
        let seq = history(&[
            (0, RmwOp::Write(1), RmwResp::Ack, 0, 10),
            (1, RmwOp::Read, RmwResp::Value(1), 20, 30),
        ]);
        let conc = history(&[
            (0, RmwOp::Write(1), RmwResp::Ack, 0, 25),
            (1, RmwOp::Read, RmwResp::Value(1), 20, 30),
        ]);
        let ka = TranspositionTable::<RmwRegister>::key(&seq);
        let kb = TranspositionTable::<RmwRegister>::key(&conc);
        assert_ne!(ka, kb);
    }
}
