//! The work-stealing exploration frontier and its deterministic merge.
//!
//! [`model_check`](crate::model_check) splits the exploration grid into
//! **work units** — one per `clock × delay-code` cell, plus DFS subtrees
//! split off at a hot cell's first (depth-0) choice point — and fans
//! them out over a scoped worker pool in the style of
//! [`skewbound_sim::par::run_grid`]: workers claim units from a shared
//! frontier (smallest canonical coordinate first), explore them with
//! [`crate::explore`]'s replay DFS, and share one
//! [`TranspositionTable`] so linearizability verdicts memoized by one
//! worker serve all of them.
//!
//! ## The determinism contract
//!
//! Parallel execution is treated as *best-effort cache warming*: after
//! the pool drains, a single-threaded **merge walk** revisits every unit
//! in canonical order — ascending clock index, then delay code, then
//! DFS plan — and absorbs each unit's result into the report. A unit
//! whose recorded result does not fit the canonical schedule budget at
//! its position (or that no worker got to) is simply re-explored inline
//! by the merge walk with the exact remaining budget. Worker scheduling
//! can therefore change *how fast* the answer arrives, never *what* it
//! is: counts, `capped`, violation order (lexicographically-least
//! first) and the serialized fringe are bit-identical at any
//! `SKEWBOUND_THREADS`.
//!
//! The split rule is deterministic for the same reason: a fresh cell
//! always splits at its first run's depth-0 choice point when that
//! point branches, regardless of pool pressure, so the unit set itself
//! does not depend on thread timing.
//!
//! ## Budget and fringe
//!
//! [`McConfig::max_schedules`] is a *total* budget. Workers stop
//! claiming once the global executed-schedule counter passes it; the
//! merge walk then computes the exact canonical cut, re-running the cut
//! unit with the precise remainder. Everything beyond the cut — the
//! pending unit list and the lazy cell-generator position — is returned
//! as a [`Fringe`], serializable to `skewbound-fringe/v1` JSON via the
//! `lint` JSON module and resumable with [`model_check_resumable`]: a
//! resumed exploration (with the cumulative budget raised) produces the
//! same final report as an uninterrupted run. Cells are enumerated
//! lazily throughout, so a `2^64`-cell grid caps cleanly instead of
//! overflowing.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use skewbound_core::params::Params;
use skewbound_lint::json::{obj, parse, Json};
use skewbound_sim::ids::ProcessId;
use skewbound_sim::par;
use skewbound_sim::time::SimTime;
use skewbound_spec::seqspec::SequentialSpec;

use crate::explore::{
    explore_unit, preflight, DigitCounter, McConfig, McReport, McViolation, UnitOutcome,
    ViolationKind,
};
use crate::model::ModelActor;
use crate::table::TranspositionTable;

/// Schema tag of the serialized fringe.
pub const FRINGE_SCHEMA: &str = "skewbound-fringe/v1";

/// One work unit: a DFS subtree of one grid cell. `plan == []` with
/// `lock_depth == 0` is the whole fresh cell; a split sibling carries
/// the locked choice prefix it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Unit {
    pub(crate) clock_idx: usize,
    /// Delay digits, least-significant first (index into
    /// `McConfig::delay_choices` per message).
    pub(crate) digits: Vec<usize>,
    pub(crate) plan: Vec<usize>,
    pub(crate) lock_depth: usize,
}

impl Ord for Unit {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Canonical exploration order: clock index, then delay *code*
        // (digits are little-endian, so compare from the most
        // significant end), then DFS plan (lexicographic; a prefix
        // precedes its extensions, matching DFS emission order).
        self.clock_idx
            .cmp(&other.clock_idx)
            .then_with(|| self.digits.len().cmp(&other.digits.len()))
            .then_with(|| self.digits.iter().rev().cmp(other.digits.iter().rev()))
            .then_with(|| self.plan.cmp(&other.plan))
            .then_with(|| self.lock_depth.cmp(&other.lock_depth))
    }
}

impl PartialOrd for Unit {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy generator of fresh cells in canonical order.
#[derive(Debug, Clone)]
struct CellCursor {
    clock_idx: usize,
    clock_count: usize,
    counter: DigitCounter,
}

impl CellCursor {
    fn new(base: usize, messages: usize, clock_count: usize) -> Self {
        CellCursor {
            clock_idx: 0,
            clock_count,
            counter: DigitCounter::new(base, messages),
        }
    }

    fn resume(clock_idx: usize, digits: Vec<usize>, base: usize, clock_count: usize) -> Self {
        CellCursor {
            clock_idx,
            clock_count,
            counter: DigitCounter::from_digits(digits, base),
        }
    }

    fn next_cell(&mut self) -> Option<(usize, Vec<usize>)> {
        if self.clock_idx >= self.clock_count {
            return None;
        }
        let cell = (self.clock_idx, self.counter.current().to_vec());
        if !self.counter.advance() {
            self.clock_idx += 1;
        }
        Some(cell)
    }

    /// The next cell the cursor would produce, without advancing; `None`
    /// once exhausted.
    fn position(&self) -> Option<(usize, Vec<usize>)> {
        if self.clock_idx >= self.clock_count {
            return None;
        }
        Some((self.clock_idx, self.counter.current().to_vec()))
    }
}

/// Claimable work: split-off units first (they always precede every
/// cell the cursor has yet to produce), then fresh cells off the lazy
/// cursor. `BTreeMap` keyed by the canonical order so the smallest
/// coordinate is claimed first — that keeps worker effort aligned with
/// the canonical budget cut.
#[derive(Debug)]
struct FrontierState {
    pending: BTreeMap<Unit, ()>,
    cursor: CellCursor,
}

impl FrontierState {
    fn claim(&mut self) -> Option<Unit> {
        if let Some((unit, ())) = self.pending.pop_first() {
            return Some(unit);
        }
        let (clock_idx, digits) = self.cursor.next_cell()?;
        Some(Unit {
            clock_idx,
            digits,
            plan: Vec::new(),
            lock_depth: 0,
        })
    }
}

/// The part of the exploration that is still ahead: accumulated
/// deterministic counts plus the unexplored unit list and generator
/// position. Serialize with [`Fringe::to_json`], restore with
/// [`Fringe::parse`], and continue with
/// [`model_check_resumable`] — the resumed run's final report equals an
/// uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fringe {
    pub(crate) messages: usize,
    pub(crate) cells: u64,
    pub(crate) schedules: u64,
    pub(crate) pruned: u64,
    pub(crate) off_space: u64,
    pub(crate) unknown: u64,
    pub(crate) explored_states: u64,
    pub(crate) violations: Vec<McViolation>,
    /// Unexplored units beyond the cut, in canonical order.
    pub(crate) pending: Vec<Unit>,
    /// Where the lazy cell generator stopped, if cells remain.
    pub(crate) cursor: Option<(usize, Vec<usize>)>,
}

impl Fringe {
    /// Units pending beyond the cut (not counting cells the lazy
    /// generator has yet to produce).
    #[must_use]
    pub fn pending_units(&self) -> usize {
        self.pending.len()
    }

    /// Schedules already executed before the cut.
    #[must_use]
    pub fn schedules_done(&self) -> u64 {
        self.schedules
    }

    /// Serializes to `skewbound-fringe/v1` JSON (pretty-printed, like
    /// certificates).
    #[must_use]
    pub fn to_json(&self) -> String {
        let num_u = |v: u64| Json::Num(i64::try_from(v).expect("count fits i64"));
        let num_us = |v: usize| Json::Num(i64::try_from(v).expect("count fits i64"));
        let digit_arr = |ds: &[usize]| Json::Arr(ds.iter().map(|&d| num_us(d)).collect::<Vec<_>>());
        let violations = self
            .violations
            .iter()
            .map(|v| {
                let (name, detail) = match &v.kind {
                    ViolationKind::Invariant { name, detail } => {
                        (Json::Str(name.clone()), Json::Str(detail.clone()))
                    }
                    ViolationKind::SendOrderDivergence { detail } => {
                        (Json::Null, Json::Str(detail.clone()))
                    }
                    _ => (Json::Null, Json::Null),
                };
                obj([
                    ("clock_idx", num_us(v.clock_idx)),
                    ("delay_digits", digit_arr(&v.delay_digits)),
                    ("choices", digit_arr(&v.choices)),
                    ("kind", Json::Str(v.kind.label().to_owned())),
                    ("name", name),
                    ("detail", detail),
                ])
            })
            .collect();
        let pending = self
            .pending
            .iter()
            .map(|u| {
                obj([
                    ("clock_idx", num_us(u.clock_idx)),
                    ("digits", digit_arr(&u.digits)),
                    ("plan", digit_arr(&u.plan)),
                    ("lock_depth", num_us(u.lock_depth)),
                ])
            })
            .collect();
        let cursor = match &self.cursor {
            Some((clock_idx, digits)) => obj([
                ("clock_idx", num_us(*clock_idx)),
                ("digits", digit_arr(digits)),
            ]),
            None => Json::Null,
        };
        obj([
            ("schema", Json::Str(FRINGE_SCHEMA.into())),
            ("messages", num_us(self.messages)),
            ("cells", num_u(self.cells)),
            ("schedules", num_u(self.schedules)),
            ("pruned", num_u(self.pruned)),
            ("off_space", num_u(self.off_space)),
            ("unknown", num_u(self.unknown)),
            ("explored_states", num_u(self.explored_states)),
            ("violations", Json::Arr(violations)),
            ("pending", Json::Arr(pending)),
            ("cursor", cursor),
        ])
        .pretty()
    }

    /// Parses and validates a serialized fringe.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field: wrong schema,
    /// missing members, negative counts, or a non-canonical pending
    /// list.
    pub fn parse(text: &str) -> Result<Fringe, String> {
        let doc = parse(text)?;
        let schema = require_str(&doc, "schema")?;
        if schema != FRINGE_SCHEMA {
            return Err(format!("schema is {schema:?}, expected {FRINGE_SCHEMA:?}"));
        }
        let messages = require_usize(&doc, "messages")?;
        let mut violations = Vec::new();
        for (i, v) in require_arr(&doc, "violations")?.iter().enumerate() {
            let kind_label = require_str(v, "kind")?;
            let detail = v.get("detail").and_then(Json::as_str).unwrap_or_default();
            let kind = match kind_label {
                "not-linearizable" => ViolationKind::NotLinearizable,
                "incomplete-history" => ViolationKind::IncompleteHistory,
                "invariant" => ViolationKind::Invariant {
                    name: v
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("violations[{i}] invariant needs a name"))?
                        .to_owned(),
                    detail: detail.to_owned(),
                },
                "send-order-divergence" => ViolationKind::SendOrderDivergence {
                    detail: detail.to_owned(),
                },
                other => return Err(format!("violations[{i}] has unknown kind {other:?}")),
            };
            violations.push(McViolation {
                clock_idx: require_usize(v, "clock_idx")?,
                delay_digits: require_digits(v, "delay_digits")?,
                choices: require_digits(v, "choices")?,
                kind,
            });
        }
        let mut pending = Vec::new();
        for (i, u) in require_arr(&doc, "pending")?.iter().enumerate() {
            let unit = Unit {
                clock_idx: require_usize(u, "clock_idx")?,
                digits: require_digits(u, "digits")?,
                plan: require_digits(u, "plan")?,
                lock_depth: require_usize(u, "lock_depth")?,
            };
            if unit.digits.len() != messages {
                return Err(format!(
                    "pending[{i}] has {} delay digits for {messages} messages",
                    unit.digits.len()
                ));
            }
            if let Some(prev) = pending.last() {
                if *prev >= unit {
                    return Err(format!("pending[{i}] breaks the canonical unit order"));
                }
            }
            pending.push(unit);
        }
        let cursor = match require(&doc, "cursor")? {
            Json::Null => None,
            c => {
                let digits = require_digits(c, "digits")?;
                if digits.len() != messages {
                    return Err(format!(
                        "cursor has {} delay digits for {messages} messages",
                        digits.len()
                    ));
                }
                Some((require_usize(c, "clock_idx")?, digits))
            }
        };
        Ok(Fringe {
            messages,
            cells: require_u64(&doc, "cells")?,
            schedules: require_u64(&doc, "schedules")?,
            pruned: require_u64(&doc, "pruned")?,
            off_space: require_u64(&doc, "off_space")?,
            unknown: require_u64(&doc, "unknown")?,
            explored_states: require_u64(&doc, "explored_states")?,
            violations,
            pending,
            cursor,
        })
    }

    /// Checks that this fringe matches the exploration it is about to
    /// resume: same per-run message count, digits within the configured
    /// delay choices, clock indices within range.
    fn validate_for<S: SequentialSpec>(
        &self,
        config: &McConfig<S>,
        messages: usize,
    ) -> Result<(), String> {
        if self.messages != messages {
            return Err(format!(
                "fringe was serialized for {} messages per run, this scenario has {messages}",
                self.messages
            ));
        }
        let base = config.delay_choices.len();
        let clocks = config.clock_choices.len();
        let check_cell = |clock_idx: usize, digits: &[usize]| -> Result<(), String> {
            if clock_idx >= clocks {
                return Err(format!(
                    "fringe names clock index {clock_idx}, config has {clocks} clock choices"
                ));
            }
            if let Some(&d) = digits.iter().find(|&&d| d >= base) {
                return Err(format!(
                    "fringe names delay digit {d}, config has {base} delay choices"
                ));
            }
            Ok(())
        };
        for u in &self.pending {
            check_cell(u.clock_idx, &u.digits)?;
        }
        for v in &self.violations {
            check_cell(v.clock_idx, &v.delay_digits)?;
        }
        if let Some((clock_idx, digits)) = &self.cursor {
            check_cell(*clock_idx, digits)?;
        }
        Ok(())
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    require(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    let n = require(doc, key)?
        .as_num()
        .ok_or_else(|| format!("field {key:?} must be a number"))?;
    u64::try_from(n).map_err(|_| format!("field {key:?} must be non-negative, got {n}"))
}

fn require_usize(doc: &Json, key: &str) -> Result<usize, String> {
    let n = require_u64(doc, key)?;
    usize::try_from(n).map_err(|_| format!("field {key:?} does not fit usize: {n}"))
}

fn require_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    require(doc, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn require_digits(doc: &Json, key: &str) -> Result<Vec<usize>, String> {
    require_arr(doc, key)?
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let n = d
                .as_num()
                .ok_or_else(|| format!("{key}[{i}] must be a number"))?;
            usize::try_from(n).map_err(|_| format!("{key}[{i}] must be non-negative, got {n}"))
        })
        .collect()
}

/// [`model_check`](crate::model_check) with an optional resume point and
/// the leftover fringe in the result. `config.max_schedules` is the
/// *cumulative* budget including the schedules a resumed fringe already
/// executed, so `resume`-ing with the same config continues toward the
/// same cut an uninterrupted run would hit. The second component is
/// `Some` exactly when the report is `capped`.
///
/// # Panics
///
/// Panics if `config` has no delay or clock choices, or if `resume` does
/// not match the scenario (different message count, digits or clock
/// indices outside the configured choices).
pub fn model_check_resumable<A, F>(
    spec: &A::Spec,
    make_actors: &F,
    params: &Params,
    script: &[(ProcessId, SimTime, A::Op)],
    config: &McConfig<A::Spec>,
    resume: Option<&Fringe>,
) -> (McReport, Option<Fringe>)
where
    A: ModelActor,
    A::Spec: Sync,
    <A::Spec as SequentialSpec>::State: Sync,
    <A::Spec as SequentialSpec>::Op: Send + Sync,
    <A::Spec as SequentialSpec>::Resp: Send + Sync,
    F: Fn() -> Vec<A> + Sync,
{
    let started = Instant::now();
    let messages = match preflight(make_actors, params, script, config) {
        Ok(messages) => messages,
        Err(report) => return (*report, None),
    };
    if let Some(fringe) = resume {
        if let Err(why) = fringe.validate_for(config, messages) {
            panic!("cannot resume from fringe: {why}");
        }
    }

    let base = config.delay_choices.len();
    let clock_count = config.clock_choices.len();
    let workers = config.workers.unwrap_or_else(par::available_workers).max(1);
    let budget = config.max_schedules;
    let table: TranspositionTable<A::Spec> = TranspositionTable::new();

    let mut pending = BTreeMap::new();
    let cursor = match resume {
        None => CellCursor::new(base, messages, clock_count),
        Some(fringe) => {
            for unit in &fringe.pending {
                pending.insert(unit.clone(), ());
            }
            match &fringe.cursor {
                Some((clock_idx, digits)) => {
                    CellCursor::resume(*clock_idx, digits.clone(), base, clock_count)
                }
                // Generator was exhausted at serialization time: park the
                // cursor past the last clock.
                None => CellCursor::resume(clock_count, vec![0; messages], base, clock_count),
            }
        }
    };
    let already_done = resume.map_or(0, |f| f.schedules);
    let initial_position = cursor.position();

    let frontier = Mutex::new(FrontierState {
        pending,
        cursor: cursor.clone(),
    });
    let results: Mutex<Vec<(Unit, UnitOutcome)>> = Mutex::new(Vec::new());
    let schedules_done = AtomicU64::new(already_done);
    let min_violating: Mutex<Option<Unit>> = Mutex::new(None);
    let first_panic: Mutex<Option<(Unit, String)>> = Mutex::new(None);

    let worker_loop = || {
        loop {
            let done = schedules_done.load(Ordering::Relaxed);
            if done >= budget {
                return;
            }
            let unit = {
                let mut frontier = frontier.lock().expect("frontier poisoned");
                if config.stop_at_first_violation {
                    // Units past the least violating coordinate are dead
                    // weight: the merge walk will discard them.
                    let min = min_violating.lock().expect("min poisoned");
                    if let Some(min) = min.as_ref() {
                        let ahead_of_min = frontier
                            .pending
                            .first_key_value()
                            .is_some_and(|(u, ())| u < min);
                        if !ahead_of_min {
                            return;
                        }
                    }
                }
                frontier.claim()
            };
            let Some(unit) = unit else { return };
            let unit_budget = budget.saturating_sub(done);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                explore_unit(
                    spec,
                    make_actors,
                    params,
                    script,
                    config,
                    unit.clock_idx,
                    &unit.digits,
                    &unit.plan,
                    unit.lock_depth,
                    unit_budget,
                    Some(&table),
                    true,
                )
            }));
            match outcome {
                Ok(outcome) => {
                    schedules_done.fetch_add(outcome.schedules, Ordering::Relaxed);
                    if !outcome.spawned.is_empty() {
                        let mut frontier = frontier.lock().expect("frontier poisoned");
                        for (plan, lock_depth) in &outcome.spawned {
                            frontier.pending.insert(
                                Unit {
                                    clock_idx: unit.clock_idx,
                                    digits: unit.digits.clone(),
                                    plan: plan.clone(),
                                    lock_depth: *lock_depth,
                                },
                                (),
                            );
                        }
                    }
                    if config.stop_at_first_violation && !outcome.violations.is_empty() {
                        let mut min = min_violating.lock().expect("min poisoned");
                        if min.as_ref().is_none_or(|m| unit < *m) {
                            *min = Some(unit.clone());
                        }
                    }
                    results
                        .lock()
                        .expect("results poisoned")
                        .push((unit, outcome));
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let mut first = first_panic.lock().expect("panic slot poisoned");
                    if first.as_ref().is_none_or(|(u, _)| unit < *u) {
                        *first = Some((unit, message));
                    }
                    return;
                }
            }
        }
    };

    if workers <= 1 {
        worker_loop();
    } else {
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(worker_loop);
            }
        });
    }

    if let Some((unit, message)) = first_panic.into_inner().expect("panic slot poisoned") {
        panic!(
            "exploration of clock {}, delay digits {:?}, plan {:?} panicked: {message}",
            unit.clock_idx, unit.digits, unit.plan
        );
    }

    // ---- Deterministic merge walk (single-threaded) ----

    let mut map: BTreeMap<Unit, Option<UnitOutcome>> = BTreeMap::new();
    for (unit, outcome) in results.into_inner().expect("results poisoned") {
        map.insert(unit, Some(outcome));
    }
    let leftover = frontier.into_inner().expect("frontier poisoned");
    for (unit, ()) in leftover.pending {
        map.entry(unit).or_insert(None);
    }
    let mut cursor = leftover.cursor;

    let mut report = McReport {
        messages,
        cells: 0,
        schedules: 0,
        pruned: 0,
        off_space: 0,
        unknown: 0,
        capped: false,
        explored_states: 0,
        violations: Vec::new(),
        wall_nanos: 0,
        workers,
        table_entries: 0,
        table_hits: 0,
    };
    if let Some(fringe) = resume {
        report.cells = fringe.cells;
        report.schedules = fringe.schedules;
        report.pruned = fringe.pruned;
        report.off_space = fringe.off_space;
        report.unknown = fringe.unknown;
        report.explored_states = fringe.explored_states;
        report.violations = fringe.violations.clone();
    }
    let mut fringe_pending: Vec<Unit> = Vec::new();
    let mut stopped = false;
    // The cell the canonical walk is currently inside: the last absorbed
    // unit's cell, seeded from a resumed fringe's pending list (whose
    // units all share one cell by construction). Decides which leftover
    // units are canonical pending at the budget cut and where the
    // serialized cursor points.
    let mut current_cell: Option<(usize, Vec<usize>)> = resume
        .and_then(|f| f.pending.first())
        .map(|u| (u.clock_idx, u.digits.clone()));

    loop {
        let (unit, recorded) = if let Some((unit, recorded)) = map.pop_first() {
            (unit, recorded)
        } else if report.capped || stopped {
            // Cells the lazy generator never produced stay unproduced:
            // the cursor position goes to the fringe as-is.
            break;
        } else {
            match cursor.next_cell() {
                Some((clock_idx, digits)) => (
                    Unit {
                        clock_idx,
                        digits,
                        plan: Vec::new(),
                        lock_depth: 0,
                    },
                    None,
                ),
                None => break,
            }
        };
        if stopped {
            // A violation before this coordinate ended the exploration
            // (`stop_at_first_violation`): everything later is discarded,
            // exactly as the sequential `break 'grid` did.
            continue;
        }
        let remaining = budget.saturating_sub(report.schedules);
        if remaining == 0 {
            report.capped = true;
            // Only the partially-absorbed cell's DFS leftovers are
            // canonical pending. Units in later cells are speculative
            // worker progress the canonical walk never reached — they
            // are regenerable from the cursor, so they are dropped (the
            // serialized cursor is rolled back to the successor of
            // `current_cell` below).
            if current_cell
                .as_ref()
                .is_some_and(|(c, d)| *c == unit.clock_idx && *d == unit.digits)
            {
                fringe_pending.push(unit);
            }
            continue;
        }
        let outcome = match recorded {
            Some(o)
                if (o.resume.is_none() && o.schedules <= remaining)
                    || (o.resume.is_some() && o.schedules == remaining) =>
            {
                o
            }
            // No worker reached this unit, or its recorded run does not
            // land on the canonical cut: re-explore inline with the
            // exact remaining budget. The shared table makes the re-run
            // cheap — every verdict is already memoized.
            _ => explore_unit(
                spec,
                make_actors,
                params,
                script,
                config,
                unit.clock_idx,
                &unit.digits,
                &unit.plan,
                unit.lock_depth,
                remaining,
                Some(&table),
                true,
            ),
        };
        current_cell = Some((unit.clock_idx, unit.digits.clone()));
        report.cells += outcome.cells;
        report.schedules += outcome.schedules;
        report.pruned += outcome.pruned;
        report.off_space += outcome.off_space;
        report.unknown += outcome.unknown;
        report.explored_states += outcome.events;
        let violated = !outcome.violations.is_empty();
        report.violations.extend(outcome.violations);
        for (plan, lock_depth) in outcome.spawned {
            map.entry(Unit {
                clock_idx: unit.clock_idx,
                digits: unit.digits.clone(),
                plan,
                lock_depth,
            })
            .or_insert(None);
        }
        if let Some((plan, lock_depth)) = outcome.resume {
            report.capped = true;
            fringe_pending.push(Unit {
                clock_idx: unit.clock_idx,
                digits: unit.digits.clone(),
                plan,
                lock_depth,
            });
        }
        if config.stop_at_first_violation && violated {
            stopped = true;
        }
    }

    report.wall_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    report.table_entries = table.entries();
    report.table_hits = table.hits();

    let fringe = report.capped.then(|| {
        // Canonical cursor: the successor of the cell the walk stopped
        // inside — never the worker-advanced generator position, which
        // depends on thread timing.
        let cursor = match &current_cell {
            Some((clock_idx, digits)) => {
                let mut c = CellCursor::resume(*clock_idx, digits.clone(), base, clock_count);
                c.next_cell();
                c.position()
            }
            None => initial_position,
        };
        Fringe {
            messages,
            cells: report.cells,
            schedules: report.schedules,
            pruned: report.pruned,
            off_space: report.off_space,
            unknown: report.unknown,
            explored_states: report.explored_states,
            violations: report.violations.clone(),
            pending: fringe_pending,
            cursor,
        }
    });
    (report, fringe)
}
