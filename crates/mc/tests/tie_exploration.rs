//! Timestamp-tie exploration: a write and a read invoked at the same
//! instant carry timestamps tied on the clock component, so the
//! `AccessorRespond` path's exclusive bound and the `Execute` path's
//! inclusive bound disagree exactly on the tied operation. The
//! deterministic regression lives in `skewbound-core`'s replica tests;
//! here the same scenario is model-checked over every delay corner,
//! clock corner and same-time delivery order — in both pid orders, so
//! both sides of the tiebreak are exercised.

use skewbound_core::params::Params;
use skewbound_core::replica::Replica;
use skewbound_mc::{model_check, McConfig};
use skewbound_sim::ids::ProcessId;
use skewbound_sim::time::{SimDuration, SimTime};
use skewbound_spec::prelude::*;
use skewbound_spec::probes;

#[test]
fn timestamp_tie_explores_clean_in_both_pid_orders() {
    let p = Params::with_optimal_skew(
        2,
        SimDuration::from_ticks(9_000),
        SimDuration::from_ticks(2_400),
        SimDuration::ZERO,
    )
    .unwrap();
    let pid = ProcessId::new;
    let t = SimTime::from_ticks;
    for (writer, reader) in [(0, 1), (1, 0)] {
        let script = [
            (pid(writer), t(0), RmwOp::Write(7)),
            (pid(reader), t(0), RmwOp::Read),
        ];
        let config = McConfig::corners(&p, probes::register_states());
        let report = model_check(
            &RmwRegister::default(),
            || Replica::group(RmwRegister::default(), &p),
            &p,
            &script,
            &config,
        );
        assert!(
            report.all_passed(),
            "tie scenario writer=p{writer} reader=p{reader} failed: {report:?}"
        );
        assert!(report.schedules > 0);
        assert_eq!(report.violations, vec![]);
    }
}
